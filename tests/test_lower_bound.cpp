// Tests of the 1D Reduce lower bound (paper Section 5.6) and of the
// optimality-ratio results it implies (Fig. 1).
#include "autogen/lower_bound.hpp"

#include <gtest/gtest.h>

#include "autogen/dp.hpp"
#include "model/costs1d.hpp"

namespace wsr::autogen {
namespace {

const MachineParams kMp{};

class LowerBoundFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lb_ = new LowerBound(512, kMp);
    ag_ = new AutoGenModel(512, kMp);
  }
  static void TearDownTestSuite() {
    delete lb_;
    delete ag_;
    lb_ = nullptr;
    ag_ = nullptr;
  }
  static LowerBound* lb_;
  static AutoGenModel* ag_;
};
LowerBound* LowerBoundFixture::lb_ = nullptr;
AutoGenModel* LowerBoundFixture::ag_ = nullptr;

TEST_F(LowerBoundFixture, EnergyBasics) {
  EXPECT_EQ(lb_->energy(1, 5), 0);
  // P = 2: one message over one hop.
  EXPECT_EQ(lb_->energy(2, 1), 1);
  // Depth-1 reduce of P PEs: E*(P,1) = E*(P-1,1) + min(P-1, 2).
  EXPECT_EQ(lb_->energy(3, 1), 1 + 2);
  EXPECT_EQ(lb_->energy(4, 1), 1 + 2 + 2);
  EXPECT_EQ(lb_->energy(10, 1), 1 + 2 * 8);
}

TEST_F(LowerBoundFixture, EnergyMonotoneInDepth) {
  for (u32 p : {8u, 64u, 512u}) {
    for (u32 d = 1; d + 1 < p; ++d) {
      EXPECT_LE(lb_->energy(p, d + 1), lb_->energy(p, d));
    }
  }
}

TEST_F(LowerBoundFixture, RelaxationOfTheTreeDP) {
  // The bound drops contention and relaxes distance, so for every (P, D) it
  // must not exceed the Auto-Gen tree energy at any fanout.
  for (u32 p : {4u, 16u, 100u, 512u}) {
    for (u32 d = 1; d < p && d <= 96; ++d) {
      EXPECT_LE(lb_->energy(p, d), ag_->energy(p, d, p - 1))
          << "p=" << p << " d=" << d;
    }
  }
}

TEST_F(LowerBoundFixture, BoundsEveryPattern) {
  for (u32 p : {4u, 8u, 32u, 128u, 512u}) {
    for (u32 b : {1u, 4u, 64u, 512u, 8192u}) {
      const double lb = lb_->cycles(p, b);
      // The bound lives inside the cost model (Eq. 1); the Star's sharper
      // pipeline bound steps outside it, so Star is compared via its Eq. (1)
      // synthesis, exactly as in the paper's Fig. 1.
      EXPECT_LE(lb, static_cast<double>(
                        predict_star_reduce_eq1(p, b, kMp).cycles) *
                        (1 + 1e-9))
          << "Star p=" << p << " B=" << b;
      for (ReduceAlgo a : {ReduceAlgo::Chain, ReduceAlgo::Tree, ReduceAlgo::TwoPhase}) {
        EXPECT_LE(lb, static_cast<double>(
                          predict_reduce_1d(a, p, b, kMp).cycles) *
                          (1 + 1e-9))
            << name(a) << " p=" << p << " B=" << b;
      }
      EXPECT_LE(lb, static_cast<double>(ag_->predict(p, b).cycles) + 1e-6)
          << "AutoGen p=" << p << " B=" << b;
    }
  }
}

// --- Fig. 1 headline numbers ------------------------------------------------

double ratio(double cycles, double lb) { return cycles / lb; }

TEST_F(LowerBoundFixture, Fig1SpotChecks) {
  // Fig. 1a: Star at 512 PEs, 2^15 bytes (B = 8192 wavelets) is ~371.8x off.
  EXPECT_NEAR(ratio(static_cast<double>(
                        predict_star_reduce_eq1(512, 8192, kMp).cycles),
                    lb_->cycles(512, 8192)),
              371.8, 4.0);
  // Fig. 1a: Star at 512 PEs, scalar input is ~1.5x off (Eq. 1 terms).
  EXPECT_NEAR(ratio(static_cast<double>(
                        predict_star_reduce_eq1(512, 1, kMp).cycles),
                    lb_->cycles(512, 1)),
              1.5, 0.06);
  // Fig. 1b: Chain at 512 PEs, scalar input is ~5.9x off.
  EXPECT_NEAR(ratio(static_cast<double>(predict_chain_reduce(512, 1, kMp).cycles),
                    lb_->cycles(512, 1)),
              5.9, 0.2);
  // Fig. 1b: Chain is optimal for the largest vectors at small P.
  EXPECT_NEAR(ratio(static_cast<double>(
                        predict_chain_reduce(4, 8192, kMp).cycles),
                    lb_->cycles(4, 8192)),
              1.0, 0.05);
  // Fig. 1a: Star is near-optimal for scalars at small P (1.0 in Fig. 1a).
  EXPECT_LT(ratio(static_cast<double>(
                      predict_star_reduce_eq1(4, 1, kMp).cycles),
                  lb_->cycles(4, 1)),
            1.1);
}

TEST_F(LowerBoundFixture, Fig1OptimalityEnvelopes) {
  // Paper Section 5.7: over the whole sweep, Auto-Gen stays within 1.4x of
  // the bound, Two-Phase within 2.4x, and every fixed pattern strays to at
  // least 5.9x somewhere.
  double worst_autogen = 0, worst_two_phase = 0;
  double worst_star = 0, worst_chain = 0, worst_tree = 0;
  for (u32 p = 4; p <= 512; p *= 2) {
    for (u32 b = 1; b <= 8192; b *= 2) {
      const double lb = lb_->cycles(p, b);
      worst_autogen = std::max(
          worst_autogen,
          ratio(static_cast<double>(ag_->predict(p, b).cycles), lb));
      worst_two_phase = std::max(
          worst_two_phase,
          ratio(static_cast<double>(
                    predict_two_phase_reduce(p, b, kMp).cycles),
                lb));
      worst_star = std::max(
          worst_star,
          ratio(static_cast<double>(predict_star_reduce_eq1(p, b, kMp).cycles),
                lb));
      worst_chain = std::max(
          worst_chain,
          ratio(static_cast<double>(predict_chain_reduce(p, b, kMp).cycles), lb));
      worst_tree = std::max(
          worst_tree,
          ratio(static_cast<double>(predict_tree_reduce(p, b, kMp).cycles), lb));
    }
  }
  EXPECT_LT(worst_autogen, 1.45);
  EXPECT_LT(worst_two_phase, 2.5);
  EXPECT_GT(worst_two_phase, 1.8);  // it does stray noticeably somewhere
  EXPECT_GT(worst_star, 100.0);
  EXPECT_GT(worst_chain, 5.5);
  EXPECT_GT(worst_tree, 4.0);
}

TEST_F(LowerBoundFixture, BestDepthShrinksWithVectorLength) {
  // Large vectors push the bound towards deep, low-energy (chain-like)
  // schedules; scalars towards shallow ones.
  EXPECT_GT(lb_->best_depth(512, 8192), lb_->best_depth(512, 1));
}

}  // namespace
}  // namespace wsr::autogen
