#include "common/math.hpp"

#include <gtest/gtest.h>

namespace wsr {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8191, 4096), 2);
}

TEST(Math, Ilog2Floor) {
  EXPECT_EQ(ilog2_floor(1), 0u);
  EXPECT_EQ(ilog2_floor(2), 1u);
  EXPECT_EQ(ilog2_floor(3), 1u);
  EXPECT_EQ(ilog2_floor(4), 2u);
  EXPECT_EQ(ilog2_floor(1023), 9u);
  EXPECT_EQ(ilog2_floor(1024), 10u);
}

TEST(Math, Ilog2Ceil) {
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(2), 1u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(4), 2u);
  EXPECT_EQ(ilog2_ceil(5), 3u);
  EXPECT_EQ(ilog2_ceil(512), 9u);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 20));
  EXPECT_FALSE(is_pow2((1u << 20) + 1));
}

class IsqrtTest : public ::testing::TestWithParam<u64> {};

TEST_P(IsqrtTest, FloorAndCeilBracketTheRoot) {
  const u64 x = GetParam();
  const u64 f = isqrt_floor(x);
  const u64 c = isqrt_ceil(x);
  EXPECT_LE(f * f, x);
  EXPECT_GT((f + 1) * (f + 1), x);
  EXPECT_GE(c * c, x);
  if (c > 0) EXPECT_LT((c - 1) * (c - 1), x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IsqrtTest,
                         ::testing::Values(1, 2, 3, 4, 8, 15, 16, 17, 24, 25,
                                           255, 256, 257, 511, 512, 1u << 20,
                                           (1u << 20) + 1, 999983));

}  // namespace
}  // namespace wsr
