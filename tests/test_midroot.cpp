// Tests of the optimal-root (mid-row) Reduce-then-Broadcast extension
// (paper Section 6.1's remark about reducing to the middle PE).
#include "collectives/midroot.hpp"

#include <gtest/gtest.h>

#include "collectives/collectives.hpp"
#include "sim_test_utils.hpp"
#include "wse/checks.hpp"

namespace wsr::collectives {
namespace {

const MachineParams kMp{};

class MidRoot : public ::testing::TestWithParam<std::pair<u32, u32>> {};

TEST_P(MidRoot, AllReduceDeliversExactSumEverywhere) {
  const auto [p, b] = GetParam();
  testing::verify_ok(make_allreduce_1d_midroot(p, b));
}

TEST_P(MidRoot, SimulatorTracksModel) {
  const auto [p, b] = GetParam();
  const auto r = runtime::verify_on_fabric(make_allreduce_1d_midroot(p, b));
  ASSERT_TRUE(r.ok) << r.error;
  testing::expect_close(r.cycles, predict_midroot_allreduce(p, b, kMp).cycles,
                        0.20, 40, "midroot allreduce");
}

INSTANTIATE_TEST_SUITE_P(Sweep, MidRoot,
                         ::testing::Values(std::pair{2u, 16u}, std::pair{3u, 8u},
                                           std::pair{4u, 1u}, std::pair{9u, 64u},
                                           std::pair{16u, 1u},
                                           std::pair{33u, 128u},
                                           std::pair{64u, 256u}),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param.first) + "_B" +
                                  std::to_string(info.param.second);
                         });

TEST(MidRoot, HalvesDepthVersusEndRootedChain) {
  // Latency-bound regime: the mid-rooted chain should approach half the
  // end-rooted chain's runtime.
  const u32 p = 64, b = 1;
  const auto mid = testing::verify_ok(make_allreduce_1d_midroot(p, b));
  const auto end =
      testing::verify_ok(make_allreduce_1d(ReduceAlgo::Chain, p, b));
  EXPECT_LT(static_cast<double>(mid.cycles),
            0.62 * static_cast<double>(end.cycles));
}

TEST(MidRoot, ContentionDoublesAtTheRoot) {
  const u32 p = 17, b = 32;
  const auto r = runtime::verify_on_fabric(make_allreduce_1d_midroot(p, b));
  ASSERT_TRUE(r.ok);
  // Root drains both arms (2B) and re-emits the broadcast (B): 3B ramp
  // wavelets total at the root.
  EXPECT_EQ(r.max_ramp_wavelets, 3 * i64{b});
}

TEST(MidRoot, BroadcastFromArbitraryRoot) {
  for (u32 root : {0u, 1u, 7u, 15u}) {
    wse::Schedule s({16, 1}, 32, "bcast-from-" + std::to_string(root));
    build_broadcast_from(s, Lane::row(s.grid, 0), root, 0, no_deps(s));
    for (u32 pe = 0; pe < 16; ++pe) s.result_pes.push_back(pe);
    wse::check_valid(s);
    // The broadcast source holds the reference data at PE `root`; check all
    // PEs converge to it.
    auto inputs = wse::make_inputs(s, [](u32 pe, u32 j) {
      return static_cast<float>(pe * 1000 + j);
    });
    const auto res = wse::run_fabric(s, inputs);
    for (u32 pe = 0; pe < 16; ++pe) {
      for (u32 j = 0; j < 32; ++j) {
        ASSERT_EQ(res.memory[pe][j], static_cast<float>(root * 1000 + j))
            << "root=" << root << " pe=" << pe;
      }
    }
  }
}

TEST(MidRoot, ModelPrefersMidRootInLatencyRegime) {
  // Small B: mid-rooted beats end-rooted in the model too.
  EXPECT_LT(predict_midroot_allreduce(64, 1, kMp).cycles,
            predict_reduce_then_broadcast(ReduceAlgo::Chain, 64, 1, kMp).cycles);
  // Huge B: both are contention-bound; mid-root pays 2B at the root, so the
  // advantage disappears.
  EXPECT_GE(predict_midroot_allreduce(8, 1u << 15, kMp).cycles,
            predict_reduce_then_broadcast(ReduceAlgo::Chain, 8, 1u << 15, kMp)
                    .cycles -
                (1 << 15));
}

}  // namespace
}  // namespace wsr::collectives
