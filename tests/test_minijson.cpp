// Tests of the serving layer's JSON reader (common/minijson.hpp): the
// request grammar wsrd accepts, escape handling, and rejection of the
// malformed input a public socket will inevitably receive.
#include "common/minijson.hpp"

#include <gtest/gtest.h>

namespace wsr::json {
namespace {

Value parse_ok(const std::string& text) {
  std::string error;
  const auto v = parse(text, &error);
  EXPECT_TRUE(v.has_value()) << text << " -> " << error;
  return v.value_or(Value{});
}

std::string parse_err(const std::string& text) {
  std::string error;
  const auto v = parse(text, &error);
  EXPECT_FALSE(v.has_value()) << "accepted: " << text;
  EXPECT_FALSE(error.empty());
  return error;
}

TEST(MiniJson, ParsesTheWsrdRequestShape) {
  const Value v = parse_ok(
      R"({"collective":"reduce","grid":"64x64","bytes":4096,)"
      R"("algorithm":"Chain","tr":2,"id":7})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_string("collective"), "reduce");
  EXPECT_EQ(v.get_string("grid"), "64x64");
  EXPECT_EQ(v.get_uint("bytes"), 4096u);
  EXPECT_EQ(v.get_uint("tr"), 2u);
  EXPECT_EQ(v.get_uint("id"), 7u);
  EXPECT_EQ(v.get_string("algorithm"), "Chain");
  EXPECT_EQ(v.get("missing"), nullptr);
  EXPECT_EQ(v.get_string("missing", "fallback"), "fallback");
}

TEST(MiniJson, ParsesNestedObjectsAndArrays) {
  const Value v = parse_ok(
      R"({"grid":{"width":16,"height":8},"list":[1,2.5,-3,true,false,null]})");
  const Value* grid = v.get("grid");
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->get_uint("width"), 16u);
  EXPECT_EQ(grid->get_uint("height"), 8u);
  const Value* list = v.get("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 6u);
  EXPECT_EQ(list->array[0].number, 1.0);
  EXPECT_EQ(list->array[1].number, 2.5);
  EXPECT_EQ(list->array[2].number, -3.0);
  EXPECT_TRUE(list->array[3].boolean);
  EXPECT_FALSE(list->array[4].boolean);
  EXPECT_TRUE(list->array[5].is_null());
}

TEST(MiniJson, StringEscapes) {
  const Value v = parse_ok(R"({"s":"a\"b\\c\/d\n\tAé"})");
  EXPECT_EQ(v.get_string("s"), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(MiniJson, SurrogatePairsAndLoneSurrogates) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("😀")").string, "\xf0\x9f\x98\x80");
  // A lone high surrogate degrades to U+FFFD instead of corrupting output.
  EXPECT_EQ(parse_ok(R"("\ud83d!")").string, "\xef\xbf\xbd!");
}

TEST(MiniJson, GetUintRejectsNonRepresentableNumbers) {
  const Value v = parse_ok(R"({"neg":-1,"frac":1.5,"big":1e30,"str":"7"})");
  EXPECT_EQ(v.get_uint("neg"), std::nullopt);
  EXPECT_EQ(v.get_uint("frac"), std::nullopt);
  EXPECT_EQ(v.get_uint("big"), std::nullopt);
  EXPECT_EQ(v.get_uint("str"), std::nullopt);  // no silent coercion
}

TEST(MiniJson, WhitespaceAndEmptyContainers) {
  const Value v = parse_ok(" \t\r\n { \"a\" : [ ] , \"b\" : { } } \n");
  ASSERT_NE(v.get("a"), nullptr);
  EXPECT_TRUE(v.get("a")->array.empty());
  ASSERT_NE(v.get("b"), nullptr);
  EXPECT_TRUE(v.get("b")->is_object());
}

TEST(MiniJson, RejectsMalformedInput) {
  parse_err("");
  parse_err("{");
  parse_err(R"({"a":})");
  parse_err(R"({"a":1,})");
  parse_err(R"({'a':1})");
  parse_err(R"({"a" 1})");
  parse_err(R"("unterminated)");
  parse_err(R"("bad \x escape")");
  parse_err(R"("truncated \u00)");
  parse_err("[1,2");
  parse_err("01e");
  parse_err("nul");
  parse_err("{} trailing");
  parse_err("1 2");
  parse_err("\"ctrl\x01char\"");
}

std::string nested_arrays(int n) {
  std::string s(static_cast<std::size_t>(n), '[');
  s += "1";
  s.append(static_cast<std::size_t>(n), ']');
  return s;
}

std::string nested_objects(int n) {
  std::string s;
  for (int i = 0; i < n; ++i) s += "{\"a\":";
  s += "1";
  s.append(static_cast<std::size_t>(n), '}');
  return s;
}

TEST(MiniJson, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "[";
  const std::string error = parse_err(deep);
  EXPECT_NE(error.find("nesting"), std::string::npos);
  // A socket peer can also nest hostile objects, and truncation must not
  // matter: the parser rejects on depth before it ever misses the ']'s.
  EXPECT_NE(parse_err(nested_objects(2000)).find("nesting"),
            std::string::npos);
  std::string unterminated(2000, '[');
  EXPECT_NE(parse_err(unterminated).find("nesting"), std::string::npos);
}

TEST(MiniJson, DepthLimitBoundaryIsExact) {
  // kMaxDepth = 64: the innermost value parses at depth == array count, so
  // 64 wrappers are legal and the 65th is not. Deeply-nested-but-legal
  // input must round-trip — a limit that bites early would break real
  // (if eccentric) clients.
  parse_ok(nested_arrays(64));
  EXPECT_NE(parse_err(nested_arrays(65)).find("nesting"), std::string::npos);
  parse_ok(nested_objects(64));
  EXPECT_NE(parse_err(nested_objects(65)).find("nesting"), std::string::npos);
  // Mixed nesting counts every level the same way.
  std::string mixed;
  for (int i = 0; i < 32; ++i) mixed += "[{\"a\":";
  mixed += "null";
  for (int i = 0; i < 32; ++i) mixed += "}]";
  parse_ok(mixed);
}

}  // namespace
}  // namespace wsr::json
