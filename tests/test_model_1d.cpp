// Tests of the 1D closed-form model predictions against the paper's lemmas.
#include "model/costs1d.hpp"

#include <gtest/gtest.h>

#include "common/math.hpp"
#include "model/selector.hpp"

namespace wsr {
namespace {

const MachineParams kMp{};  // T_R = 2, so 2*T_R + 1 = 5 cycles per depth unit.

TEST(Model1D, MessageMatchesPaperFormula) {
  // T = B + P + 2*T_R (Section 4.1).
  for (u32 p : {2u, 5u, 64u, 512u}) {
    for (u32 b : {1u, 7u, 256u, 8192u}) {
      EXPECT_EQ(predict_message_1d(p, b, kMp).cycles, i64{b} + p + 4)
          << "P=" << p << " B=" << b;
    }
  }
}

TEST(Model1D, BroadcastEqualsMessage) {
  // Lemma 4.1: multicast makes Broadcast as cheap as a point-to-point send.
  for (u32 p : {2u, 17u, 512u}) {
    for (u32 b : {1u, 256u}) {
      EXPECT_EQ(predict_broadcast_1d(p, b, kMp).cycles,
                predict_message_1d(p, b, kMp).cycles);
    }
  }
}

TEST(Model1D, StarMatchesPaperFormula) {
  // T = B(P-1) + 2*T_R + 1, including the sharper B = 1 pipeline case.
  EXPECT_EQ(predict_star_reduce(512, 1, kMp).cycles, 511 + 5);
  EXPECT_EQ(predict_star_reduce(512, 256, kMp).cycles, 256 * 511 + 5);
  EXPECT_EQ(predict_star_reduce(4, 8192, kMp).cycles, 8192 * 3 + 5);
}

TEST(Model1D, ChainMatchesLemma52) {
  // T = B + (2*T_R + 2)(P - 1).
  for (u32 p : {2u, 32u, 512u}) {
    for (u32 b : {1u, 256u, 8192u}) {
      EXPECT_EQ(predict_chain_reduce(p, b, kMp).cycles, i64{b} + 6 * (p - 1))
          << "P=" << p << " B=" << b;
    }
  }
}

TEST(Model1D, TreeMatchesLemma53) {
  // T = max(B log P, B * P log P / (2(P-1)) + P - 1) + (2T_R+1) log P.
  const u32 p = 512, b = 256;
  const i64 lg = 9;
  const i64 bw = i64{b} * p * lg / (2 * (p - 1)) + (p - 1);
  const i64 expected = std::max<i64>(i64{b} * lg, bw) + 5 * lg;
  EXPECT_EQ(predict_tree_reduce(p, b, kMp).cycles, expected);
}

TEST(Model1D, TreeDepthIsLogP) {
  EXPECT_EQ(predict_tree_reduce(512, 16, kMp).terms.depth, 9);
  EXPECT_EQ(predict_tree_reduce(500, 16, kMp).terms.depth, 9);  // ceil(log2)
  EXPECT_EQ(predict_tree_reduce(4, 16, kMp).terms.depth, 2);
}

TEST(Model1D, TwoPhaseMatchesLemma54Shape) {
  // For P = S^2 the lemma gives
  // max(2B, 2B - 2B/sqrt(P) + P) + (2 sqrt(P) - 2)(2T_R+1).
  const u32 p = 256, b = 1024;  // S = 16
  const Prediction got = predict_two_phase_reduce(p, b, kMp);
  EXPECT_EQ(got.terms.depth, 2 * 16 - 2);
  EXPECT_EQ(got.terms.contention, 2 * i64{b});
  // Energy: both phases ~ P*B - sqrt(P)*B.
  EXPECT_EQ(got.terms.energy, i64{15} * b * 16 + 16 * i64{b} * 15);
  const i64 lemma =
      std::max<i64>(2 * b, 2 * b - 2 * b / 16 + p) + (2 * 16 - 2) * 5;
  EXPECT_NEAR(static_cast<double>(got.cycles), static_cast<double>(lemma),
              0.02 * lemma + 8);
}

TEST(Model1D, TwoPhaseDepthBeatsChainForLargeP) {
  const Prediction chain = predict_chain_reduce(512, 256, kMp);
  const Prediction two = predict_two_phase_reduce(512, 256, kMp);
  EXPECT_LT(two.terms.depth, chain.terms.depth / 4);
  EXPECT_LT(two.cycles, chain.cycles);
}

TEST(Model1D, RingMatchesLemma61) {
  // T = 2(P-1) ceil(B/P) + 4P - 6 + 2(P-1)(2T_R+1).
  for (u32 p : {4u, 64u, 512u}) {
    for (u32 b : {512u, 4096u, 8192u}) {
      const i64 expected =
          2 * (i64{p} - 1) * ceil_div(b, p) + 4 * i64{p} - 6 + 2 * (i64{p} - 1) * 5;
      EXPECT_EQ(predict_ring_allreduce(p, b, kMp).cycles, expected)
          << "P=" << p << " B=" << b;
    }
  }
}

TEST(Model1D, ReduceThenBroadcastAddsCycles) {
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const Prediction r = predict_reduce_1d(a, 64, 256, kMp);
    const Prediction b = predict_broadcast_1d(64, 256, kMp);
    EXPECT_EQ(predict_reduce_then_broadcast(a, 64, 256, kMp).cycles,
              r.cycles + b.cycles);
  }
}

// --- regime checks: who wins where (paper Section 5.7 / Fig. 8) ------------

TEST(Model1D, StarWinsForScalars) {
  const auto c = reduce_1d_candidates(512, 1, kMp);
  EXPECT_EQ(c[best_candidate(c)].label, "Star");
}

TEST(Model1D, ChainWinsForHugeVectors) {
  const auto c = reduce_1d_candidates(512, 1u << 17, kMp);
  EXPECT_EQ(c[best_candidate(c)].label, "Chain");
}

TEST(Model1D, TwoPhaseWinsForIntermediateVectors) {
  // Paper: "Two-phase is effective ... when P ~ B".
  const auto c = reduce_1d_candidates(512, 512, kMp);
  EXPECT_EQ(c[best_candidate(c)].label, "TwoPhase");
}

TEST(Model1D, TreeWinsForSmallVectors) {
  const auto c = reduce_1d_candidates(512, 16, kMp);
  EXPECT_EQ(c[best_candidate(c)].label, "Tree");
}

TEST(Model1D, RingBeatsChainBcastOnlyForLargeVectors) {
  // Fig. 8: ring occupies the large-B / small-P band.
  const i64 ring = predict_ring_allreduce(8, 1u << 15, kMp).cycles;
  const i64 chainb =
      predict_reduce_then_broadcast(ReduceAlgo::Chain, 8, 1u << 15, kMp).cycles;
  EXPECT_LT(ring, chainb);
  // ... but never for small vectors.
  EXPECT_GT(predict_ring_allreduce(8, 16, kMp).cycles,
            predict_reduce_then_broadcast(ReduceAlgo::Chain, 8, 16, kMp).cycles);
}

TEST(Model1D, ButterflyAndRingAreNeverBestForLargeP) {
  // Section 6.3 / Fig. 11c: butterfly never wins on 512 PEs, and even with a
  // 15% prediction error (the largest observed), ring is never the best
  // choice there either.
  // The sweep covers the paper's range (up to 1/3 of PE memory = 4096
  // wavelets); beyond that Ring eventually wins its contention-bound band.
  for (u32 b : {1u, 16u, 256u, 1024u, 4096u}) {
    const auto c = allreduce_1d_candidates(512, b, kMp);
    i64 best_rb = INT64_MAX;  // best reduce-then-broadcast candidate
    for (const Candidate& cand : c) {
      if (cand.label != "Ring") {
        best_rb = std::min(best_rb, cand.prediction.cycles);
      }
    }
    EXPECT_GT(predict_butterfly_allreduce(512, b, kMp).cycles, best_rb)
        << "B=" << b;
    EXPECT_GT(static_cast<double>(predict_ring_allreduce(512, b, kMp).cycles),
              1.15 * static_cast<double>(best_rb))
        << "B=" << b;
  }
}

TEST(Model1D, SequentialComposition) {
  const Prediction a(CostTerms{100, 10, 2, 30, 7}, kMp);
  const Prediction b(CostTerms{50, 20, 3, 40, 7}, kMp);
  const Prediction s = sequential(a, b);
  EXPECT_EQ(s.terms.energy, 150);
  EXPECT_EQ(s.terms.distance, 20);
  EXPECT_EQ(s.terms.depth, 5);
  EXPECT_EQ(s.terms.contention, 70);
  EXPECT_EQ(s.cycles, a.cycles + b.cycles);
}

}  // namespace
}  // namespace wsr
