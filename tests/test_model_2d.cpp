// Tests of the 2D model predictions (paper Section 7).
#include "model/costs2d.hpp"

#include <gtest/gtest.h>

#include "model/selector.hpp"

namespace wsr {
namespace {

const MachineParams kMp{};

TEST(Model2D, BroadcastMatchesLemma71) {
  // T = B + M + N - 2 + 2*T_R + 1.
  for (u32 m : {4u, 16u, 512u}) {
    for (u32 b : {1u, 256u, 8192u}) {
      const GridShape g{m, m};
      EXPECT_EQ(predict_broadcast_2d(g, b, kMp).cycles, i64{b} + 2 * m - 2 + 5)
          << "M=" << m << " B=" << b;
    }
  }
  // Rectangular grid.
  EXPECT_EQ(predict_broadcast_2d({8, 4}, 100, kMp).cycles, 100 + 8 + 4 - 2 + 5);
}

TEST(Model2D, Broadcast2DBeatsRowBroadcastOnSamePEs) {
  // Section 7.1: sqrt(P) x sqrt(P) broadcast beats a P-length row broadcast.
  const i64 row = predict_broadcast_1d(4096, 256, kMp).cycles;
  const i64 grid = predict_broadcast_2d({64, 64}, 256, kMp).cycles;
  EXPECT_LT(grid, row);
}

TEST(Model2D, XYReduceIsSumOfAxes) {
  const GridShape g{32, 16};
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const i64 x = predict_reduce_1d(a, 32, 64, kMp).cycles;
    const i64 y = predict_reduce_1d(a, 16, 64, kMp).cycles;
    EXPECT_EQ(predict_xy_reduce(a, a, g, 64, kMp).cycles, x + y);
  }
}

TEST(Model2D, SnakeEqualsChainOnAllPEs) {
  const GridShape g{16, 16};
  EXPECT_EQ(predict_snake_reduce(g, 128, kMp).cycles,
            predict_chain_reduce(256, 128, kMp).cycles);
}

TEST(Model2D, LowerBoundLemma72) {
  const GridShape g{512, 512};
  // max(B, B/8 + M + N - 1) + 2*T_R + 1.
  EXPECT_EQ(lower_bound_2d_reduce_cycles(g, 8, kMp), 8 / 8 + 1023 + 5);
  // For large B the contention term B dominates the max.
  EXPECT_EQ(lower_bound_2d_reduce_cycles(g, 16384, kMp), 16384 + 5);
  // Mid-range B: the bandwidth + distance term dominates.
  EXPECT_EQ(lower_bound_2d_reduce_cycles(g, 1024, kMp),
            1024 / 8 + 1023 + 5);
}

TEST(Model2D, SnakeOptimalForHugeVectors) {
  // Section 7.5: for B >> P the snake approaches the contention bound B.
  const GridShape g{8, 8};
  const u32 b = 1u << 20;
  const double ratio =
      static_cast<double>(predict_snake_reduce(g, b, kMp).cycles) /
      lower_bound_2d_reduce_cycles(g, b, kMp);
  EXPECT_LT(ratio, 1.01);
}

TEST(Model2D, RegimesMatchFig10) {
  const GridShape g{512, 512};
  {  // scalars: X-Y star wins.
    const auto c = allreduce_2d_candidates(g, 1, kMp);
    EXPECT_EQ(c[best_candidate(c)].label, "X-Y Star");
  }
  {  // intermediate: X-Y Two-Phase.
    const auto c = allreduce_2d_candidates(g, 1024, kMp);
    EXPECT_EQ(c[best_candidate(c)].label, "X-Y TwoPhase");
  }
  {  // small grid + huge vector: the snake's bandwidth-bound region.
    const auto c = allreduce_2d_candidates({8, 8}, 1u << 15, kMp);
    EXPECT_EQ(c[best_candidate(c)].label, "Snake+Bcast");
  }
}

TEST(Model2D, Reduce2DCandidatesCoverFiveAlgorithms) {
  // Registry-enumerated candidates arrive sorted by registration name.
  const auto c = reduce_2d_candidates({16, 16}, 64, kMp);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c[0].label, "Snake");
  EXPECT_EQ(c[1].label, "X-Y Chain");
  EXPECT_EQ(c[2].label, "X-Y Star");
  EXPECT_EQ(c[3].label, "X-Y Tree");
  EXPECT_EQ(c[4].label, "X-Y TwoPhase");
}

TEST(Model2D, XYRingIsSumOfAxisRings) {
  const GridShape g{16, 16};
  EXPECT_EQ(predict_xy_ring_allreduce(g, 256, kMp).cycles,
            2 * predict_ring_allreduce(16, 256, kMp).cycles);
}

TEST(Model2D, ReduceThenBroadcastComposition) {
  const GridShape g{32, 32};
  const i64 snake = predict_snake_reduce(g, 4096, kMp).cycles;
  const i64 bcast = predict_broadcast_2d(g, 4096, kMp).cycles;
  EXPECT_EQ(predict_reduce2d_then_broadcast(Reduce2DAlgo::Snake,
                                            ReduceAlgo::Chain, g, 4096, kMp)
                .cycles,
            snake + bcast);
}

}  // namespace
}  // namespace wsr
