// Systematic invariants of the performance model, swept over the full
// (pattern x P x B) grid: monotonicity, term consistency with Eq. (1),
// asymptotic behaviour, and the regime-crossover structure the paper's
// methodology relies on.
#include <gtest/gtest.h>

#include "autogen/dp.hpp"
#include "common/math.hpp"
#include "model/costs1d.hpp"
#include "model/costs2d.hpp"
#include "model/selector.hpp"

namespace wsr {
namespace {

const MachineParams kMp{};

struct Sweep {
  ReduceAlgo algo;
  u32 p;
};

std::string sweep_name(const ::testing::TestParamInfo<Sweep>& info) {
  return std::string(name(info.param.algo)) + "_P" + std::to_string(info.param.p);
}

class ModelInvariants : public ::testing::TestWithParam<Sweep> {};

TEST_P(ModelInvariants, MonotoneInVectorLength) {
  const auto [algo, p] = GetParam();
  i64 prev = 0;
  for (u32 b = 1; b <= 1 << 15; b *= 2) {
    const i64 c = predict_reduce_1d(algo, p, b, kMp).cycles;
    EXPECT_GE(c, prev) << name(algo) << " P=" << p << " B=" << b;
    prev = c;
  }
}

TEST_P(ModelInvariants, MonotoneInPECount) {
  const auto [algo, p] = GetParam();
  (void)p;
  for (u32 b : {1u, 64u, 4096u}) {
    i64 prev = 0;
    for (u32 q = 2; q <= 512; q *= 2) {
      const i64 c = predict_reduce_1d(algo, q, b, kMp).cycles;
      EXPECT_GE(c, prev) << name(algo) << " P=" << q << " B=" << b;
      prev = c;
    }
  }
}

TEST_P(ModelInvariants, TermsSynthesizeViaEq1OrSharper) {
  // Every prediction's cycle count must be <= its own Eq. (1) synthesis
  // (equal for most patterns; strictly less only where the paper derives a
  // sharper bound, i.e. Star's pipeline case).
  const auto [algo, p] = GetParam();
  for (u32 b : {1u, 16u, 256u, 8192u}) {
    const Prediction pred = predict_reduce_1d(algo, p, b, kMp);
    EXPECT_LE(pred.cycles, estimate_cycles(pred.terms, kMp))
        << name(algo) << " P=" << p << " B=" << b;
    EXPECT_GT(pred.terms.energy, 0);
    EXPECT_GT(pred.terms.depth, 0);
    EXPECT_GE(pred.terms.contention, i64{b});  // the root receives >= B
    EXPECT_EQ(pred.terms.links, i64{p} - 1);
  }
}

TEST_P(ModelInvariants, EnergyIsAtLeastOneHopPerPE) {
  // Every non-root PE's vector must cross at least one link.
  const auto [algo, p] = GetParam();
  for (u32 b : {1u, 256u}) {
    EXPECT_GE(predict_reduce_1d(algo, p, b, kMp).terms.energy,
              i64{b} * (p - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelInvariants,
    ::testing::ValuesIn([] {
      std::vector<Sweep> sweeps;
      for (ReduceAlgo a : kFixedReduceAlgos) {
        for (u32 p : {2u, 3u, 16u, 100u, 512u}) sweeps.push_back({a, p});
      }
      return sweeps;
    }()),
    sweep_name);

TEST(ModelAsymptotics, ChainApproachesB) {
  // Lemma 5.2 discussion: for B >> T_R * P the chain approaches B cycles.
  const double r = static_cast<double>(
                       predict_chain_reduce(16, 1 << 20, kMp).cycles) /
                   static_cast<double>(1 << 20);
  EXPECT_LT(r, 1.001);
}

TEST(ModelAsymptotics, StarApproachesDistanceForScalars) {
  EXPECT_EQ(predict_star_reduce(512, 1, kMp).cycles, 511 + 5);
}

TEST(ModelAsymptotics, BroadcastIndependentOfPForLargeB) {
  const i64 small = predict_broadcast_1d(4, 1 << 16, kMp).cycles;
  const i64 large = predict_broadcast_1d(512, 1 << 16, kMp).cycles;
  EXPECT_LT(static_cast<double>(large - small), 0.01 * small);
}

TEST(ModelCrossovers, EachFixedPatternWinsSomewhere) {
  // The motivation for Auto-Gen: no fixed pattern dominates. Each of the
  // four fixed patterns must be the unique best for some (P, B).
  bool wins[4] = {};
  for (u32 p = 4; p <= 512; p *= 2) {
    for (u32 b = 1; b <= 1 << 15; b *= 2) {
      const auto c = reduce_1d_candidates(p, b, kMp);
      wins[best_candidate(c)] = true;
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(wins[i]) << "pattern " << i << " never wins";
  }
}

TEST(ModelCrossovers, ReduceWinnerOrderIsStarTreeTwoPhaseChain) {
  // Fixing P = 512, the winner as B grows must pass through the regimes in
  // the paper's order (some regimes may be skipped, never reordered).
  const char* order[] = {"Star", "Tree", "TwoPhase", "Chain"};
  int stage = 0;
  for (u32 b = 1; b <= 1 << 17; b *= 2) {
    const auto c = reduce_1d_candidates(512, b, kMp);
    const std::string w = c[best_candidate(c)].label;
    while (stage < 4 && w != order[stage]) ++stage;
    ASSERT_LT(stage, 4) << "winner " << w << " out of order at B=" << b;
  }
  EXPECT_EQ(std::string(order[stage]), "Chain");  // ends bandwidth-bound
}

TEST(ModelInvariants2D, XYSymmetricOnSquareGrids) {
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const GridShape g{64, 64};
    const Prediction xy = predict_xy_reduce(a, a, g, 128, kMp);
    EXPECT_EQ(xy.cycles, 2 * predict_reduce_1d(a, 64, 128, kMp).cycles);
  }
}

TEST(ModelInvariants2D, TransposedGridsCostTheSame) {
  for (ReduceAlgo a : kFixedReduceAlgos) {
    EXPECT_EQ(predict_xy_reduce(a, a, {128, 8}, 64, kMp).cycles,
              predict_xy_reduce(a, a, {8, 128}, 64, kMp).cycles);
  }
}

TEST(ModelInvariants2D, LowerBoundBelowEvery2DAlgorithm) {
  for (GridShape g : {GridShape{8, 8}, GridShape{64, 64}, GridShape{512, 512}}) {
    for (u32 b : {1u, 256u, 8192u}) {
      const i64 lb = lower_bound_2d_reduce_cycles(g, b, kMp);
      for (const auto& cand : reduce_2d_candidates(g, b, kMp)) {
        EXPECT_LE(lb, cand.prediction.cycles)
            << cand.label << " " << g.width << "x" << g.height << " B=" << b;
      }
    }
  }
}

TEST(ModelInvariants2D, BroadcastScalesWithPerimeterNotArea) {
  // Lemma 7.1: doubling both grid dimensions adds ~2N hops, not 3N^2.
  const i64 small = predict_broadcast_2d({64, 64}, 16, kMp).cycles;
  const i64 large = predict_broadcast_2d({128, 128}, 16, kMp).cycles;
  EXPECT_EQ(large - small, 128);
}

TEST(AutoGenInvariants, PredictionMonotoneInBudgetedResources) {
  static autogen::AutoGenModel model(64, kMp);
  for (u32 p : {8u, 33u, 64u}) {
    i64 prev = 0;
    for (u32 b = 1; b <= 8192; b *= 2) {
      const i64 c = model.predict(p, b).cycles;
      EXPECT_GE(c, prev) << "p=" << p << " B=" << b;
      prev = c;
    }
  }
}

TEST(AutoGenInvariants, ScalesLikeTheBestRegime) {
  // At the extremes the Auto-Gen cost must approach the best fixed pattern.
  static autogen::AutoGenModel model(512, kMp);
  const double at_scalar = static_cast<double>(model.predict(512, 1).cycles);
  EXPECT_LE(at_scalar,
            static_cast<double>(predict_star_reduce_eq1(512, 1, kMp).cycles));
  const double at_huge = static_cast<double>(model.predict(512, 8192).cycles);
  EXPECT_LE(at_huge, 1.001 * static_cast<double>(
                                 predict_chain_reduce(512, 8192, kMp).cycles));
}

}  // namespace
}  // namespace wsr
