// Unit tests for common/parallel.hpp: the free parallel_for_index and the
// persistent ThreadPool behind FabricSim's partitioned stepping mode. The
// suite is intentionally thread-heavy — CI runs it (together with the
// fabric parity suite) under TSan, where it is the cheapest way to sweep
// the pool's phase-generation handshake for races.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace wsr {
namespace {

TEST(ParallelForIndex, CoversEveryIndexExactlyOnce) {
  for (u32 jobs : {0u, 1u, 2u, 4u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for_index(hits.size(), jobs,
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
    }
  }
}

TEST(ParallelForIndex, ZeroItemsIsANoOp) {
  parallel_for_index(0, 4, [](std::size_t) { FAIL() << "fn ran for n=0"; });
}

TEST(ThreadPool, RunsEveryIndexAndBlocksUntilDone) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  auto body = [&](std::size_t i) { hits[i].fetch_add(1); };
  pool.run(hits.size(), body);
  // run() is a full barrier: every slot must be visible right here.
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyPhases) {
  // The partitioned stepper issues several pool phases per simulated cycle;
  // exercise rapid back-to-back dispatches including empty ones.
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  long expected = 0;
  for (int phase = 0; phase < 200; ++phase) {
    const std::size_t n = static_cast<std::size_t>(phase % 7);
    auto body = [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i) + 1);
    };
    pool.run(n, body);
    for (std::size_t i = 0; i < n; ++i) expected += static_cast<long>(i) + 1;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, PoolOfOneRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(16);
  auto body = [&](std::size_t i) { ran[i] = std::this_thread::get_id(); };
  pool.run(ran.size(), body);
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace wsr
