// Tests of the persistent plan store (runtime/persistent_plan_cache.hpp)
// and its tiering under PlanCache: bit-identical round-trips across
// reopen, per-request provenance, and — most importantly — the failure
// paths. Every way a store file can be damaged (truncation, bit rot,
// schema bumps, foreign bytes, vanished algorithms) must degrade to a
// clean miss and a re-plan, never to a wrong plan.
#include "runtime/persistent_plan_cache.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "runtime/plan_json.hpp"
#include "wse/export.hpp"

namespace wsr::runtime {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kHeaderSize = 16;  // magic(8) + endian(4) + version(4)
constexpr std::size_t kFrameSize = 20;   // magic(4) + size(8) + checksum(8)

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "wsr_pcache_XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Byte offsets [start, end) of each record (frame + payload) in a store
/// image, so tests can corrupt one record surgically.
std::vector<std::pair<std::size_t, std::size_t>> record_spans(
    const std::string& bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t pos = kHeaderSize;
  while (pos + kFrameSize <= bytes.size()) {
    u64 payload = 0;
    for (int i = 0; i < 8; ++i) {
      payload |= u64{static_cast<unsigned char>(bytes[pos + 4 + i])} << (8 * i);
    }
    const std::size_t end = pos + kFrameSize + payload;
    if (end > bytes.size()) break;
    spans.emplace_back(pos, end);
    pos = end;
  }
  return spans;
}

PlanRequest reduce_req(u32 p, u32 b) {
  return {Collective::Reduce, {p, 1}, b, ""};
}

std::vector<PlanRequest> request_mix() {
  return {reduce_req(8, 16), reduce_req(16, 64),
          PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
          PlanRequest{Collective::AllReduce, {4, 4}, 32, ""},
          PlanRequest{Collective::Broadcast, {8, 1}, 32, ""},
          PlanRequest{Collective::Reduce, {16, 1}, 64, "Chain"}};
}

/// Plans every request through a fresh (memory, disk) pair against `dir`,
/// returning the response JSON each request would serve.
std::vector<std::string> serve_all(const Planner& planner,
                                   const std::string& dir,
                                   std::vector<PlanSource>* sources = nullptr) {
  PersistentPlanCache disk(dir);
  PlanCache memory;
  memory.attach_disk_store(&disk);
  std::vector<std::string> responses;
  for (const PlanRequest& req : request_mix()) {
    PlanSource source = PlanSource::Planned;
    const auto plan = memory.get_or_plan(planner, req, &source);
    if (sources != nullptr) sources->push_back(source);
    responses.push_back(plan_response_json(req, *plan, planner.machine()));
  }
  return responses;
}

TEST(PersistentPlanCache, RoundTripIsBitIdenticalAcrossReopen) {
  TempDir dir;
  const Planner planner(16);

  std::vector<PlanSource> cold_sources;
  const auto cold = serve_all(planner, dir.str(), &cold_sources);
  for (const PlanSource s : cold_sources) EXPECT_EQ(s, PlanSource::Planned);

  // Restart: a fresh process (new store + cache objects) must answer every
  // request from disk with byte-identical responses.
  std::vector<PlanSource> warm_sources;
  const auto warm = serve_all(planner, dir.str(), &warm_sources);
  for (const PlanSource s : warm_sources) EXPECT_EQ(s, PlanSource::DiskHit);
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(cold[i], warm[i]) << "response " << i << " drifted across reopen";
  }
}

TEST(PersistentPlanCache, SecondLookupInOneProcessIsAMemoryHit) {
  TempDir dir;
  const Planner planner(16);
  PersistentPlanCache disk(dir.str());
  PlanCache memory;
  memory.attach_disk_store(&disk);

  PlanSource source = PlanSource::MemoryHit;
  const auto first = memory.get_or_plan(planner, reduce_req(8, 16), &source);
  EXPECT_EQ(source, PlanSource::Planned);
  const auto second = memory.get_or_plan(planner, reduce_req(8, 16), &source);
  EXPECT_EQ(source, PlanSource::MemoryHit);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(memory.hits(), 1u);
  EXPECT_EQ(memory.misses(), 1u);
  EXPECT_EQ(memory.disk_hits(), 0u);
}

TEST(PersistentPlanCache, DiskHitIsPromotedIntoTheMemoryTier) {
  TempDir dir;
  const Planner planner(16);
  {
    PersistentPlanCache disk(dir.str());
    PlanCache memory;
    memory.attach_disk_store(&disk);
    memory.get_or_plan(planner, reduce_req(8, 16));
  }
  PersistentPlanCache disk(dir.str());
  PlanCache memory;
  memory.attach_disk_store(&disk);
  PlanSource source = PlanSource::Planned;
  memory.get_or_plan(planner, reduce_req(8, 16), &source);
  EXPECT_EQ(source, PlanSource::DiskHit);
  memory.get_or_plan(planner, reduce_req(8, 16), &source);
  EXPECT_EQ(source, PlanSource::MemoryHit);
  EXPECT_EQ(memory.disk_hits(), 1u);
  EXPECT_EQ(memory.misses(), 0u);  // nothing was ever planned twice
}

TEST(PersistentPlanCache, TruncatedTailKeepsTheValidPrefix) {
  TempDir dir;
  const Planner planner(16);
  serve_all(planner, dir.str());

  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  std::string bytes = read_file(store);
  const auto spans = record_spans(bytes);
  ASSERT_GE(spans.size(), 3u);
  // Tear mid-way through the last record (a crash during append).
  bytes.resize(spans.back().first + (spans.back().second - spans.back().first) / 2);
  write_file(store, bytes);

  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, spans.size() - 1);
  EXPECT_EQ(reopened.stats().load_errors, 1u);

  // The torn record is a clean miss: the full mix replans only that one.
  PlanCache memory;
  memory.attach_disk_store(&reopened);
  for (const PlanRequest& req : request_mix()) {
    memory.get_or_plan(planner, req);
  }
  EXPECT_EQ(memory.misses(), 1u);
  EXPECT_EQ(memory.disk_hits(), request_mix().size() - 1);
}

TEST(PersistentPlanCache, ChecksumMismatchSkipsOnlyThatRecord) {
  TempDir dir;
  const Planner planner(16);
  serve_all(planner, dir.str());

  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  std::string bytes = read_file(store);
  const auto spans = record_spans(bytes);
  ASSERT_GE(spans.size(), 3u);
  // Bit rot inside the payload of the middle record.
  const std::size_t victim = spans[1].first + kFrameSize + 5;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  write_file(store, bytes);

  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, spans.size() - 1);
  EXPECT_EQ(reopened.stats().load_errors, 1u);

  // Every surviving record still serves; the rotten one replans. No wrong
  // plan can surface: the re-served responses must match direct planning.
  PlanCache memory;
  memory.attach_disk_store(&reopened);
  for (const PlanRequest& req : request_mix()) {
    const auto plan = memory.get_or_plan(planner, req);
    const Plan direct = planner.plan(req);
    EXPECT_EQ(plan_response_json(req, *plan, planner.machine()),
              plan_response_json(req, direct, planner.machine()));
  }
  EXPECT_EQ(memory.misses(), 1u);
}

TEST(PersistentPlanCache, SchemaVersionBumpIsACleanMissAndRecovers) {
  TempDir dir;
  const Planner planner(16);
  serve_all(planner, dir.str());

  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  std::string bytes = read_file(store);
  bytes[12] = 99;  // schema version field (docs/serving.md layout)
  write_file(store, bytes);

  // The whole store is ignored (never misread under the wrong schema)...
  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, 0u);
  EXPECT_GE(reopened.stats().load_errors, 1u);
  EXPECT_EQ(reopened.size(), 0u);

  // ...and the next append atomically rewrites it under the current schema.
  PlanCache memory;
  memory.attach_disk_store(&reopened);
  memory.get_or_plan(planner, reduce_req(8, 16));

  PersistentPlanCache recovered(dir.str());
  EXPECT_EQ(recovered.stats().loaded, 1u);
  EXPECT_EQ(recovered.stats().load_errors, 0u);
  EXPECT_NE(recovered.find(PlanCache::key_for(planner, reduce_req(8, 16))),
            nullptr);
}

TEST(PersistentPlanCache, ForeignFileIsACleanMissAndRecovers) {
  TempDir dir;
  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  write_file(store, "definitely not a plan store\n");

  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, 0u);
  EXPECT_GE(reopened.stats().load_errors, 1u);

  const Planner planner(16);
  PlanCache memory;
  memory.attach_disk_store(&reopened);
  memory.get_or_plan(planner, reduce_req(8, 16));
  PersistentPlanCache recovered(dir.str());
  EXPECT_EQ(recovered.stats().loaded, 1u);
}

TEST(PersistentPlanCache, RecordsNamingUnknownAlgorithmsAreSkipped) {
  TempDir dir;
  const Planner planner(16);
  const PlanRequest real = reduce_req(16, 64);
  const Plan plan = planner.plan(real);
  {
    PersistentPlanCache store(dir.str());
    // A record whose key names an algorithm the registry does not know —
    // the round-trip-by-stable-name contract makes it invalid on load.
    PlanKey ghost = PlanCache::key_for(planner, real);
    ghost.algorithm = "Retired-Algorithm";
    store.append(ghost, std::make_shared<const Plan>(plan));
    // And one valid record.
    store.append(PlanCache::key_for(planner, real),
                 std::make_shared<const Plan>(plan));
  }
  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, 1u);
  EXPECT_EQ(reopened.stats().load_errors, 1u);
  EXPECT_NE(reopened.find(PlanCache::key_for(planner, real)), nullptr);
}

TEST(PersistentPlanCache, ConcurrentWritersLoseNoValidRecords) {
  TempDir dir;
  const Planner planner(32);
  // Two store instances simulate two processes (separate in-process
  // mutexes, shared flock); four threads hammer both with overlapping
  // shapes so appends genuinely interleave.
  PersistentPlanCache store_a(dir.str());
  PersistentPlanCache store_b(dir.str());
  const std::vector<PlanRequest> shapes = {
      reduce_req(4, 16),  reduce_req(8, 16),  reduce_req(8, 64),
      reduce_req(16, 16), reduce_req(16, 64), reduce_req(32, 16),
      reduce_req(32, 64), reduce_req(24, 32)};

  std::vector<std::thread> threads;
  for (u32 t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      PersistentPlanCache& store = (t % 2 == 0) ? store_a : store_b;
      for (u32 i = 0; i < shapes.size(); ++i) {
        const PlanRequest& req = shapes[(i + t) % shapes.size()];
        store.append(PlanCache::key_for(planner, req),
                     std::make_shared<const Plan>(planner.plan(req)));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Reopen: every shape must load cleanly (duplicates collapse first-wins;
  // flock-serialized appends mean no interleaved/torn records).
  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().load_errors, 0u);
  EXPECT_EQ(reopened.size(), shapes.size());
  for (const PlanRequest& req : shapes) {
    const auto restored = reopened.find(PlanCache::key_for(planner, req));
    ASSERT_NE(restored, nullptr);
    const Plan direct = planner.plan(req);
    EXPECT_EQ(restored->algorithm, direct.algorithm);
    EXPECT_EQ(restored->prediction.cycles, direct.prediction.cycles);
    EXPECT_EQ(wse::to_json(restored->schedule), wse::to_json(direct.schedule));
  }
}

TEST(PersistentPlanCache, EmptyAndMissingStoresLoadCleanly) {
  TempDir dir;
  PersistentPlanCache fresh(dir.str() + "/fresh_subdir");  // dir is created
  EXPECT_EQ(fresh.size(), 0u);

  // A zero-byte file (crash before the header landed) is also clean.
  write_file(fs::path(dir.str()) / "plans.wsrpc", "");
  PersistentPlanCache empty(dir.str());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.stats().load_errors, 0u);
}

TEST(PersistentPlanCache, LoadCompactsWhenDeadBytesExceedHalfTheFile) {
  TempDir dir;
  const Planner planner(16);
  serve_all(planner, dir.str());  // seed: one record per request

  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  const std::string clean = read_file(store);
  const auto spans = record_spans(clean);
  ASSERT_FALSE(spans.empty());

  // Simulate racing writers: re-append whole copies of every record until
  // duplicates (dead bytes on load — first record wins) exceed half the
  // file. Duplicated records are valid, so this is pure dead weight.
  std::string bloated = clean;
  while (bloated.size() < 2 * clean.size() + 1) {
    for (const auto& [start, end] : spans) {
      bloated.append(clean, start, end - start);
    }
  }
  write_file(store, bloated);

  PersistentPlanCache compacting(dir.str());
  const auto stats = compacting.stats();
  EXPECT_EQ(stats.loaded, spans.size());
  EXPECT_EQ(stats.compactions, 1u);
  // The rewrite went through the temp-file + atomic-rename path and kept
  // exactly the live set: the file is back to its clean size and a fresh
  // load sees no dead bytes (and therefore does not compact again).
  EXPECT_EQ(read_file(store), clean);
  PersistentPlanCache reopened(dir.str());
  EXPECT_EQ(reopened.stats().loaded, spans.size());
  EXPECT_EQ(reopened.stats().compactions, 0u);
}

TEST(PersistentPlanCache, MaxBytesBoundCompactsThenSkipsAppends) {
  TempDir dir;
  const Planner planner(16);
  const PlanRequest req_a = reduce_req(8, 16);
  const PlanRequest req_b = reduce_req(16, 64);

  // Measure the store size with just req_a's record on disk.
  {
    PersistentPlanCache seed(dir.str());
    seed.append(PlanCache::key_for(planner, req_a),
                std::make_shared<const Plan>(planner.plan(req_a)));
  }
  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  const u64 bound = read_file(store).size();

  fs::remove(store);
  PersistentPlanCache bounded(dir.str(),
                              PersistentPlanCache::Options{.max_bytes = bound});
  bounded.append(PlanCache::key_for(planner, req_a),
                 std::make_shared<const Plan>(planner.plan(req_a)));
  EXPECT_EQ(bounded.stats().appended, 1u);

  // The second record would cross the bound; compaction finds no dead
  // bytes to reclaim (so no rewrite happens, and compactions stays 0) and
  // the append is skipped — served from memory, just not durable.
  bounded.append(PlanCache::key_for(planner, req_b),
                 std::make_shared<const Plan>(planner.plan(req_b)));
  // A third over-bound append hits the futility memo (the live set is
  // known to leave no room) and skips without re-scanning the store.
  const PlanRequest req_c = reduce_req(8, 32);
  bounded.append(PlanCache::key_for(planner, req_c),
                 std::make_shared<const Plan>(planner.plan(req_c)));
  const auto stats = bounded.stats();
  EXPECT_EQ(stats.appended, 1u);
  EXPECT_EQ(stats.appends_skipped, 2u);
  EXPECT_EQ(stats.compactions, 0u);  // nothing was reclaimed, no rewrite
  EXPECT_LE(read_file(store).size(), bound);
  // This process still serves req_b (memory index)...
  EXPECT_NE(bounded.find(PlanCache::key_for(planner, req_b)), nullptr);
  // ...but a restart only sees the durable record.
  PersistentPlanCache reopened(dir.str());
  EXPECT_NE(reopened.find(PlanCache::key_for(planner, req_a)), nullptr);
  EXPECT_EQ(reopened.find(PlanCache::key_for(planner, req_b)), nullptr);
}

TEST(PersistentPlanCache, BoundedAppendReclaimsDeadBytesBeforeSkipping) {
  TempDir dir;
  const Planner planner(16);
  const PlanRequest req_a = reduce_req(8, 16);
  const PlanRequest req_b = reduce_req(16, 64);
  const auto key_a = PlanCache::key_for(planner, req_a);
  const auto key_b = PlanCache::key_for(planner, req_b);
  const auto plan_a = std::make_shared<const Plan>(planner.plan(req_a));
  const auto plan_b = std::make_shared<const Plan>(planner.plan(req_b));

  // Size a bound that fits both records exactly (header + a + b).
  {
    PersistentPlanCache seed(dir.str());
    seed.append(key_a, plan_a);
    seed.append(key_b, plan_b);
  }
  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  const std::string clean = read_file(store);
  const u64 bound = clean.size();

  // Leave exactly one duplicate of record a on disk: not enough dead
  // weight to trigger the load-time compaction (<= half the file), but
  // enough that appending record b crosses the bound — the bounded append
  // must compact the duplicate away and then have room, not skip.
  const auto spans = record_spans(clean);
  ASSERT_EQ(spans.size(), 2u);
  std::string bloated = clean.substr(0, spans[0].second);  // header + a
  bloated.append(clean, spans[0].first, spans[0].second - spans[0].first);
  write_file(store, bloated);
  ASSERT_GT(bloated.size() + (spans[1].second - spans[1].first), bound);

  PersistentPlanCache bounded(dir.str(),
                              PersistentPlanCache::Options{.max_bytes = bound});
  ASSERT_EQ(bounded.stats().compactions, 0u);  // load left the store alone
  bounded.append(key_b, plan_b);
  const auto stats = bounded.stats();
  EXPECT_EQ(stats.appended, 1u);
  EXPECT_EQ(stats.appends_skipped, 0u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_LE(read_file(store).size(), bound);
  PersistentPlanCache reopened(dir.str());
  EXPECT_NE(reopened.find(key_a), nullptr);
  EXPECT_NE(reopened.find(key_b), nullptr);
}

TEST(PersistentPlanCache, CompactionPreservesRecordsOfUnknownAlgorithms) {
  TempDir dir;
  const Planner planner(16);
  const PlanRequest real = reduce_req(16, 64);
  const Plan plan = planner.plan(real);
  {
    PersistentPlanCache store(dir.str());
    // A record this process's registry cannot resolve — a *per-process*
    // miss: another process sharing the store (one that registers the
    // algorithm) could still serve it, so compaction must not delete it.
    PlanKey ghost = PlanCache::key_for(planner, real);
    ghost.algorithm = "Retired-Algorithm";
    store.append(ghost, std::make_shared<const Plan>(plan));
    store.append(PlanCache::key_for(planner, real),
                 std::make_shared<const Plan>(plan));
  }
  const fs::path store = fs::path(dir.str()) / "plans.wsrpc";
  const std::string clean = read_file(store);
  const auto spans = record_spans(clean);
  ASSERT_EQ(spans.size(), 2u);

  // Bloat with duplicates of the *resolvable* record until dead bytes
  // exceed half the file, forcing a load-time compaction.
  std::string bloated = clean;
  while (bloated.size() < 2 * clean.size() + 1) {
    bloated.append(clean, spans[1].first, spans[1].second - spans[1].first);
  }
  write_file(store, bloated);

  PersistentPlanCache compacting(dir.str());
  EXPECT_EQ(compacting.stats().compactions, 1u);
  // The compacted store is exactly the original two records — the
  // unresolvable one included — so the file is byte-identical to clean.
  EXPECT_EQ(read_file(store), clean);

  // Duplicates of the *unresolvable* record are dead bytes too (compaction
  // keeps only the first copy per key), so they must also trigger the
  // load-time rewrite — only the first copy counts as live.
  std::string ghost_bloated = clean;
  while (ghost_bloated.size() < 2 * clean.size() + 1) {
    ghost_bloated.append(clean, spans[0].first,
                         spans[0].second - spans[0].first);
  }
  write_file(store, ghost_bloated);
  PersistentPlanCache compacting_ghosts(dir.str());
  EXPECT_EQ(compacting_ghosts.stats().compactions, 1u);
  EXPECT_EQ(read_file(store), clean);
}

TEST(PersistentPlanCache, FindCountsHitsAndMisses) {
  TempDir dir;
  const Planner planner(16);
  PersistentPlanCache disk(dir.str());
  const auto key = PlanCache::key_for(planner, reduce_req(8, 16));
  EXPECT_EQ(disk.find(key), nullptr);
  disk.append(key, std::make_shared<const Plan>(planner.plan(reduce_req(8, 16))));
  EXPECT_NE(disk.find(key), nullptr);
  EXPECT_NE(disk.find(key), nullptr);
  const auto stats = disk.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

}  // namespace
}  // namespace wsr::runtime
