// Tests of the PlanCache and the Planner::plan_many batch API: keying,
// hit/miss accounting, cross-thread consistency under contention.
#include "runtime/plan_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim_test_utils.hpp"

namespace wsr::runtime {
namespace {

PlanRequest reduce_req(u32 p, u32 b) {
  return {Collective::Reduce, {p, 1}, b, ""};
}

TEST(PlanCache, HitReturnsTheIdenticalPlan) {
  const Planner planner(32);
  PlanCache cache;
  const PlanRequest req = reduce_req(16, 64);
  const auto first = cache.get_or_plan(planner, req);
  const auto second = cache.get_or_plan(planner, req);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // shared, not re-planned
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, KeyCoversShapeCollectiveAlgorithmAndMachine) {
  const Planner a(32);
  const Planner b(32, MachineParams{.ramp_latency = 7});
  const PlanRequest req = reduce_req(16, 64);
  EXPECT_EQ(PlanCache::key_for(a, req), PlanCache::key_for(a, req));
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(b, req));
  EXPECT_NE(PlanCache::key_for(a, reduce_req(16, 64)),
            PlanCache::key_for(a, reduce_req(16, 128)));
  EXPECT_NE(PlanCache::key_for(a, reduce_req(16, 64)),
            PlanCache::key_for(a, reduce_req(8, 64)));
  PlanRequest forced = reduce_req(16, 64);
  forced.algorithm = "Chain";
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(a, forced));
  PlanRequest allreduce = reduce_req(16, 64);
  allreduce.collective = Collective::AllReduce;
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(a, allreduce));
}

TEST(PlanCache, CachedPlansMatchDirectPlanning) {
  const Planner planner(32);
  PlanCache cache;
  for (const PlanRequest& req :
       {reduce_req(8, 16), reduce_req(32, 1024),
        PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
        PlanRequest{Collective::AllReduce, {8, 8}, 64, ""},
        PlanRequest{Collective::Broadcast, {8, 1}, 32, ""}}) {
    const Plan direct = planner.plan(req);
    const auto cached = cache.get_or_plan(planner, req);
    EXPECT_EQ(cached->algorithm, direct.algorithm);
    EXPECT_EQ(cached->prediction.cycles, direct.prediction.cycles);
    EXPECT_EQ(cached->schedule.name, direct.schedule.name);
  }
}

TEST(PlanCache, EightThreadsHammeringOneCacheStayConsistent) {
  const Planner planner(32);
  PlanCache cache(4);  // few shards => real lock contention
  const std::vector<PlanRequest> shapes = {
      reduce_req(8, 16),
      reduce_req(16, 64),
      reduce_req(32, 1024),
      PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
      PlanRequest{Collective::AllReduce, {16, 1}, 4096, ""},
      PlanRequest{Collective::Reduce, {8, 8}, 256, ""},
      PlanRequest{Collective::AllReduce, {8, 8}, 64, ""},
      PlanRequest{Collective::Broadcast, {16, 1}, 128, ""},
  };
  constexpr u32 kThreads = 8;
  constexpr u32 kIters = 64;

  std::vector<std::vector<std::shared_ptr<const Plan>>> seen(kThreads);
  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u32 i = 0; i < kIters; ++i) {
        // Each thread walks the shapes in a different rotation so lookups
        // and inserts interleave across shards.
        const PlanRequest& req = shapes[(i + t) % shapes.size()];
        seen[t].push_back(cache.get_or_plan(planner, req));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.size(), shapes.size());
  EXPECT_EQ(cache.hits() + cache.misses(), u64{kThreads} * kIters);
  EXPECT_GE(cache.misses(), shapes.size());

  // Every thread must have observed the same canonical plan per shape.
  for (u32 t = 0; t < kThreads; ++t) {
    for (u32 i = 0; i < kIters; ++i) {
      const PlanRequest& req = shapes[(i + t) % shapes.size()];
      const auto canonical = cache.find(PlanCache::key_for(planner, req));
      ASSERT_NE(canonical, nullptr);
      EXPECT_EQ(seen[t][i]->algorithm, canonical->algorithm);
      EXPECT_EQ(seen[t][i]->prediction.cycles, canonical->prediction.cycles);
    }
  }
}

TEST(PlanCacheEviction, BoundedCacheNeverExceedsCapacity) {
  const Planner planner(32);
  // 4 shards, capacity 8 => per-shard capacity 2.
  PlanCache cache(4, 8);
  EXPECT_EQ(cache.max_entries(), 8u);

  // Fill far past the bound: 24 distinct shapes, 3 passes.
  std::vector<PlanRequest> shapes;
  for (u32 p : {4u, 8u, 16u, 24u, 32u, 12u}) {
    for (u32 b : {16u, 64u, 256u, 1024u}) shapes.push_back(reduce_req(p, b));
  }
  for (u32 round = 0; round < 3; ++round) {
    for (const auto& req : shapes) cache.get_or_plan(planner, req);
  }

  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
  // Accounting: every lookup was either a hit or a miss, and every eviction
  // was preceded by the insert of a miss.
  EXPECT_EQ(cache.hits() + cache.misses(), u64{3} * shapes.size());
  EXPECT_LE(cache.evictions(), cache.misses());
  // Evicted shapes re-plan on the next round: with 24 shapes cycling
  // through capacity 8, later rounds keep missing (LRU churn), so misses
  // exceed the distinct-shape count.
  EXPECT_GT(cache.misses(), shapes.size());

  // The cache still serves correct plans after heavy eviction churn.
  const Plan direct = planner.plan(shapes[0]);
  const auto cached = cache.get_or_plan(planner, shapes[0]);
  EXPECT_EQ(cached->algorithm, direct.algorithm);
  EXPECT_EQ(cached->prediction.cycles, direct.prediction.cycles);
}

TEST(PlanCacheEviction, LruKeepsTheHotEntry) {
  const Planner planner(32);
  // One shard so the recency order is global and deterministic.
  PlanCache cache(1, 2);
  const PlanRequest hot = reduce_req(8, 16);
  const PlanRequest warm = reduce_req(16, 64);
  const PlanRequest cold = reduce_req(32, 256);

  const auto hot_plan = cache.get_or_plan(planner, hot);
  cache.get_or_plan(planner, warm);
  cache.get_or_plan(planner, hot);   // refresh: hot is now most recent
  cache.get_or_plan(planner, cold);  // evicts warm, not hot
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  // hot must still be served from cache (same object), warm re-plans.
  EXPECT_EQ(cache.get_or_plan(planner, hot).get(), hot_plan.get());
  const u64 misses_before = cache.misses();
  cache.get_or_plan(planner, warm);
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(PlanCacheEviction, BoundedCacheSurvivesThreadChurn) {
  const Planner planner(32);
  PlanCache cache(2, 4);
  std::vector<PlanRequest> shapes;
  for (u32 p : {4u, 8u, 16u, 24u, 32u}) {
    for (u32 b : {16u, 64u, 256u}) shapes.push_back(reduce_req(p, b));
  }
  std::vector<std::thread> threads;
  for (u32 t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (u32 i = 0; i < 32; ++i) {
        const auto plan =
            cache.get_or_plan(planner, shapes[(i + t) % shapes.size()]);
        ASSERT_NE(plan, nullptr);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.hits() + cache.misses(), u64{4} * 32);
}

TEST(PlanMany, MatchesSequentialPlanningAndSharesCacheEntries) {
  const Planner planner(32);
  std::vector<PlanRequest> reqs;
  for (u32 i = 0; i < 24; ++i) {
    // 6 distinct shapes, each repeated 4 times.
    reqs.push_back(reduce_req(8 + 4 * (i % 6), 32u << (i % 3)));
  }

  PlanCache cache;
  const auto with_cache = planner.plan_many(reqs, &cache, 8);
  const auto without_cache = planner.plan_many(reqs, nullptr, 4);
  ASSERT_EQ(with_cache.size(), reqs.size());
  ASSERT_EQ(without_cache.size(), reqs.size());

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Plan direct = planner.plan(reqs[i]);
    ASSERT_NE(with_cache[i], nullptr);
    ASSERT_NE(without_cache[i], nullptr);
    EXPECT_EQ(with_cache[i]->algorithm, direct.algorithm);
    EXPECT_EQ(with_cache[i]->prediction.cycles, direct.prediction.cycles);
    EXPECT_EQ(without_cache[i]->algorithm, direct.algorithm);
    EXPECT_EQ(without_cache[i]->prediction.cycles, direct.prediction.cycles);
  }

  // Identical requests resolve to the same cached object.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    for (std::size_t j = i + 1; j < reqs.size(); ++j) {
      if (reqs[i] == reqs[j]) {
        EXPECT_EQ(with_cache[i].get(), with_cache[j].get());
      }
    }
  }
}

TEST(PlanMany, PlannedSchedulesExecuteCorrectly) {
  const Planner planner(16);
  const std::vector<PlanRequest> reqs = {
      reduce_req(8, 32),
      PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
      PlanRequest{Collective::AllReduce, {4, 4}, 16, ""},
      PlanRequest{Collective::Broadcast, {8, 1}, 16, ""},
  };
  PlanCache cache;
  const auto plans = planner.plan_many(reqs, &cache, 4);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    testing::verify_ok(plans[i]->schedule,
                       reqs[i].collective == Collective::Broadcast);
  }
}

}  // namespace
}  // namespace wsr::runtime
