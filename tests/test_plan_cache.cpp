// Tests of the PlanCache and the Planner::plan_many batch API: keying,
// hit/miss accounting, cross-thread consistency under contention.
#include "runtime/plan_cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim_test_utils.hpp"

namespace wsr::runtime {
namespace {

PlanRequest reduce_req(u32 p, u32 b) {
  return {Collective::Reduce, {p, 1}, b, ""};
}

TEST(PlanCache, HitReturnsTheIdenticalPlan) {
  const Planner planner(32);
  PlanCache cache;
  const PlanRequest req = reduce_req(16, 64);
  const auto first = cache.get_or_plan(planner, req);
  const auto second = cache.get_or_plan(planner, req);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // shared, not re-planned
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, KeyCoversShapeCollectiveAlgorithmAndMachine) {
  const Planner a(32);
  const Planner b(32, MachineParams{.ramp_latency = 7});
  const PlanRequest req = reduce_req(16, 64);
  EXPECT_EQ(PlanCache::key_for(a, req), PlanCache::key_for(a, req));
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(b, req));
  EXPECT_NE(PlanCache::key_for(a, reduce_req(16, 64)),
            PlanCache::key_for(a, reduce_req(16, 128)));
  EXPECT_NE(PlanCache::key_for(a, reduce_req(16, 64)),
            PlanCache::key_for(a, reduce_req(8, 64)));
  PlanRequest forced = reduce_req(16, 64);
  forced.algorithm = "Chain";
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(a, forced));
  PlanRequest allreduce = reduce_req(16, 64);
  allreduce.collective = Collective::AllReduce;
  EXPECT_NE(PlanCache::key_for(a, req), PlanCache::key_for(a, allreduce));
}

TEST(PlanCache, CachedPlansMatchDirectPlanning) {
  const Planner planner(32);
  PlanCache cache;
  for (const PlanRequest& req :
       {reduce_req(8, 16), reduce_req(32, 1024),
        PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
        PlanRequest{Collective::AllReduce, {8, 8}, 64, ""},
        PlanRequest{Collective::Broadcast, {8, 1}, 32, ""}}) {
    const Plan direct = planner.plan(req);
    const auto cached = cache.get_or_plan(planner, req);
    EXPECT_EQ(cached->algorithm, direct.algorithm);
    EXPECT_EQ(cached->prediction.cycles, direct.prediction.cycles);
    EXPECT_EQ(cached->schedule.name, direct.schedule.name);
  }
}

TEST(PlanCache, EightThreadsHammeringOneCacheStayConsistent) {
  const Planner planner(32);
  PlanCache cache(4);  // few shards => real lock contention
  const std::vector<PlanRequest> shapes = {
      reduce_req(8, 16),
      reduce_req(16, 64),
      reduce_req(32, 1024),
      PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
      PlanRequest{Collective::AllReduce, {16, 1}, 4096, ""},
      PlanRequest{Collective::Reduce, {8, 8}, 256, ""},
      PlanRequest{Collective::AllReduce, {8, 8}, 64, ""},
      PlanRequest{Collective::Broadcast, {16, 1}, 128, ""},
  };
  constexpr u32 kThreads = 8;
  constexpr u32 kIters = 64;

  std::vector<std::vector<std::shared_ptr<const Plan>>> seen(kThreads);
  std::vector<std::thread> threads;
  for (u32 t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (u32 i = 0; i < kIters; ++i) {
        // Each thread walks the shapes in a different rotation so lookups
        // and inserts interleave across shards.
        const PlanRequest& req = shapes[(i + t) % shapes.size()];
        seen[t].push_back(cache.get_or_plan(planner, req));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.size(), shapes.size());
  EXPECT_EQ(cache.hits() + cache.misses(), u64{kThreads} * kIters);
  EXPECT_GE(cache.misses(), shapes.size());

  // Every thread must have observed the same canonical plan per shape.
  for (u32 t = 0; t < kThreads; ++t) {
    for (u32 i = 0; i < kIters; ++i) {
      const PlanRequest& req = shapes[(i + t) % shapes.size()];
      const auto canonical = cache.find(PlanCache::key_for(planner, req));
      ASSERT_NE(canonical, nullptr);
      EXPECT_EQ(seen[t][i]->algorithm, canonical->algorithm);
      EXPECT_EQ(seen[t][i]->prediction.cycles, canonical->prediction.cycles);
    }
  }
}

TEST(PlanMany, MatchesSequentialPlanningAndSharesCacheEntries) {
  const Planner planner(32);
  std::vector<PlanRequest> reqs;
  for (u32 i = 0; i < 24; ++i) {
    // 6 distinct shapes, each repeated 4 times.
    reqs.push_back(reduce_req(8 + 4 * (i % 6), 32u << (i % 3)));
  }

  PlanCache cache;
  const auto with_cache = planner.plan_many(reqs, &cache, 8);
  const auto without_cache = planner.plan_many(reqs, nullptr, 4);
  ASSERT_EQ(with_cache.size(), reqs.size());
  ASSERT_EQ(without_cache.size(), reqs.size());

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Plan direct = planner.plan(reqs[i]);
    ASSERT_NE(with_cache[i], nullptr);
    ASSERT_NE(without_cache[i], nullptr);
    EXPECT_EQ(with_cache[i]->algorithm, direct.algorithm);
    EXPECT_EQ(with_cache[i]->prediction.cycles, direct.prediction.cycles);
    EXPECT_EQ(without_cache[i]->algorithm, direct.algorithm);
    EXPECT_EQ(without_cache[i]->prediction.cycles, direct.prediction.cycles);
  }

  // Identical requests resolve to the same cached object.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    for (std::size_t j = i + 1; j < reqs.size(); ++j) {
      if (reqs[i] == reqs[j]) {
        EXPECT_EQ(with_cache[i].get(), with_cache[j].get());
      }
    }
  }
}

TEST(PlanMany, PlannedSchedulesExecuteCorrectly) {
  const Planner planner(16);
  const std::vector<PlanRequest> reqs = {
      reduce_req(8, 32),
      PlanRequest{Collective::AllReduce, {16, 1}, 64, ""},
      PlanRequest{Collective::AllReduce, {4, 4}, 16, ""},
      PlanRequest{Collective::Broadcast, {8, 1}, 16, ""},
  };
  PlanCache cache;
  const auto plans = planner.plan_many(reqs, &cache, 4);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    testing::verify_ok(plans[i]->schedule,
                       reqs[i].collective == Collective::Broadcast);
  }
}

}  // namespace
}  // namespace wsr::runtime
