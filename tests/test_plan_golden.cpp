// Golden-file regression of the serving-layer plan JSON: one response per
// registered algorithm (wsr_plan --json and wsrd emit exactly these bytes,
// see runtime/plan_json.hpp). A diff here means the wire format changed —
// bump docs/serving.md and regenerate deliberately with
//   WSR_UPDATE_GOLDEN=1 ./test_plan_golden
// rather than hand-editing the expectation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "conformance.hpp"
#include "registry/algorithm_registry.hpp"
#include "runtime/plan_json.hpp"
#include "runtime/planner.hpp"

namespace wsr {
namespace {

std::filesystem::path golden_path() {
  return std::filesystem::path(__FILE__).parent_path() / "golden" /
         "plan_json.golden";
}

/// "fabric_stepping" reflects the host's WSR_FABRIC_STEPPING default — the
/// one legitimately environment-dependent response field. Mask its value so
/// the golden bytes compare equal on any machine.
std::string mask_stepping(std::string text) {
  const std::string key = "\"fabric_stepping\":\"";
  for (std::size_t at = text.find(key); at != std::string::npos;
       at = text.find(key, at + key.size())) {
    const std::size_t begin = at + key.size();
    const std::size_t end = text.find('"', begin);
    if (end == std::string::npos) break;
    text.replace(begin, end - begin, "*");
  }
  return text;
}

/// The first applicable (shape, vec_len) of the conformance sweep — the
/// same deterministic order the conformance suite uses, so the golden file
/// pins every algorithm on a stable small case.
bool smallest_case(const registry::AlgorithmDescriptor& d, GridShape* g,
                   u32* vec_len) {
  for (GridShape cand : conformance::shapes_for(d.dims)) {
    for (u32 b : conformance::vec_lens_for(cand)) {
      if (d.applicable(cand, b)) {
        *g = cand;
        *vec_len = b;
        return true;
      }
    }
  }
  return false;
}

TEST(PlanGolden, JsonResponsesAreStable) {
  const MachineParams mp;
  const runtime::Planner planner(16, mp);
  std::ostringstream out;
  for (const registry::AlgorithmDescriptor* d : conformance::all_descriptors()) {
    GridShape g{0, 0};
    u32 B = 0;
    ASSERT_TRUE(smallest_case(*d, &g, &B)) << d->name;
    runtime::PlanRequest req;
    req.collective = d->collective;
    req.grid = g;
    req.vec_len = B;
    req.algorithm = d->name;
    const runtime::Plan plan = planner.plan(req);
    out << runtime::plan_response_json(req, plan, mp);
    if (out.str().empty() || out.str().back() != '\n') out << '\n';
  }
  const std::string actual = mask_stepping(out.str());

  const std::filesystem::path path = golden_path();
  if (std::getenv("WSR_UPDATE_GOLDEN") != nullptr) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream(path) << actual;
    GTEST_SKIP() << "golden file regenerated at " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path
                         << " — run once with WSR_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, mask_stepping(expected.str()))
      << "plan JSON drifted from " << path
      << " — if intentional, regenerate with WSR_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace wsr
