// Tests of the pluggable PlanStore tier (src/store/): the shared record
// codec, the peer wire protocol against a scripted mock daemon, the
// fault-tolerance policy layer (retries, circuit breaker), hot-shape
// tracking, the serving-side cache verbs, and the append-path degradation
// of the file store. The recurring theme: every failure mode — torn bytes,
// garbage replies, dead peers, a full disk — must degrade to a clean miss
// (and a re-plan), never to a wrong plan, a crash, or an unbounded stall.
#include "store/plan_store.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <thread>

#include "runtime/persistent_plan_cache.hpp"
#include "serving/core.hpp"
#include "serving/request.hpp"
#include "store/fault_tolerant_store.hpp"
#include "store/file_store.hpp"
#include "store/flaky_store.hpp"
#include "store/peer_store.hpp"
#include "store/record.hpp"

namespace wsr::store {
namespace {

namespace fs = std::filesystem;
using runtime::Collective;
using runtime::PlanCache;
using runtime::Planner;
using runtime::PlanRequest;
using runtime::PlanSource;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "wsr_store_XXXXXX").string();
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

const Planner& test_planner() {
  static const Planner planner(16);
  return planner;
}

PlanRequest reduce_req(u32 p, u32 b) {
  return {Collective::Reduce, {p, 1}, b, ""};
}

PlanKey key_of(const PlanRequest& req) {
  return PlanCache::key_for(test_planner(), req);
}

std::shared_ptr<const Plan> plan_of(const PlanRequest& req) {
  return std::make_shared<const Plan>(test_planner().plan(req));
}

// --- codec -------------------------------------------------------------------

TEST(Base64, RoundTripsArbitraryBytes) {
  std::string bytes;
  for (int n = 0; n < 300; ++n) {
    ASSERT_EQ(base64_decode(base64_encode(bytes)), bytes) << "len " << n;
    bytes.push_back(static_cast<char>(n * 37 + 1));
  }
}

TEST(Base64, RejectsGarbage) {
  EXPECT_FALSE(base64_decode("AAA").has_value());       // truncated group
  EXPECT_FALSE(base64_decode("AA!A").has_value());      // non-alphabet byte
  EXPECT_FALSE(base64_decode("A=AA").has_value());      // interior padding
  EXPECT_FALSE(base64_decode("AA==AA==").has_value());  // padding mid-stream
  EXPECT_FALSE(base64_decode("=AAA").has_value());
  EXPECT_TRUE(base64_decode("").has_value());
  EXPECT_TRUE(base64_decode("AA==").has_value());
  EXPECT_TRUE(base64_decode("AAA=").has_value());
}

TEST(RecordCodec, RecordAndKeyRoundTrip) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);

  const std::string record = wsr::store::serialize_plan_record(key, *plan);
  PlanKey got_key;
  Plan got_plan;
  ASSERT_TRUE(parse_plan_record(record, &got_key, &got_plan));
  EXPECT_EQ(got_key, key);
  EXPECT_EQ(got_plan.algorithm, plan->algorithm);

  const std::optional<PlanKey> round = parse_plan_key(serialize_plan_key(key));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, key);
}

TEST(RecordCodec, RejectsDamage) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);
  const std::string record = wsr::store::serialize_plan_record(key, *plan);
  PlanKey k;
  Plan p;

  // Any single-byte flip breaks the frame magic, the length, the checksum,
  // or the payload (and thus the checksum): sample across the record.
  for (std::size_t pos = 0; pos < record.size(); pos += 7) {
    std::string bad = record;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_FALSE(parse_plan_record(bad, &k, &p)) << "flip at " << pos;
  }
  // Truncation at every length.
  for (std::size_t len = 0; len < record.size(); len += 9) {
    EXPECT_FALSE(parse_plan_record(record.substr(0, len), &k, &p));
  }
  // Trailing bytes are not tolerated (a record is exactly one frame).
  EXPECT_FALSE(parse_plan_record(record + "x", &k, &p));
  // Key parsing is equally strict.
  const std::string key_bytes = serialize_plan_key(key);
  EXPECT_FALSE(parse_plan_key(key_bytes + "x").has_value());
  EXPECT_FALSE(parse_plan_key(key_bytes.substr(0, key_bytes.size() - 1)));
}

TEST(RecordCodec, WireFramingIsPinned) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);

  const std::string get_line = PeerStore::get_request_line(key);
  const std::string get_prefix = "{\"verb\":\"cache_get\",\"schema\":2,\"key\":\"";
  ASSERT_EQ(get_line.rfind(get_prefix, 0), 0u) << get_line;
  ASSERT_EQ(get_line.substr(get_line.size() - 3), "\"}\n");
  const auto key_bytes = base64_decode(
      get_line.substr(get_prefix.size(), get_line.size() - get_prefix.size() - 3));
  ASSERT_TRUE(key_bytes.has_value());
  const auto parsed_key = parse_plan_key(*key_bytes);
  ASSERT_TRUE(parsed_key.has_value());
  EXPECT_EQ(*parsed_key, key);

  const std::string put_line = PeerStore::put_request_line(key, *plan);
  const std::string put_prefix =
      "{\"verb\":\"cache_put\",\"schema\":2,\"record\":\"";
  ASSERT_EQ(put_line.rfind(put_prefix, 0), 0u) << put_line;
  const auto rec_bytes = base64_decode(
      put_line.substr(put_prefix.size(), put_line.size() - put_prefix.size() - 3));
  ASSERT_TRUE(rec_bytes.has_value());
  PlanKey k;
  Plan p;
  EXPECT_TRUE(parse_plan_record(*rec_bytes, &k, &p));
  EXPECT_EQ(k, key);
}

// --- hot tracking ------------------------------------------------------------

TEST(HotTracker, RanksByUsesThenFirstSeen) {
  HotTracker hot;
  const PlanKey a = key_of(reduce_req(4, 16));
  const PlanKey b = key_of(reduce_req(8, 16));
  const PlanKey c = key_of(reduce_req(16, 16));
  hot.seed(c);  // first seen, zero uses
  hot.note(a);
  hot.note(b);
  hot.note(b);
  const auto top = hot.top(0);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, b);
  EXPECT_EQ(top[0].uses, 2u);
  EXPECT_EQ(top[1].key, a);
  EXPECT_EQ(top[2].key, c);  // ties (0 uses) rank by first-seen
  EXPECT_EQ(hot.top(1).size(), 1u);
  EXPECT_EQ(hot.tracked(), 3u);
}

TEST(FileStore, HotSidecarPersistsAcrossReopen) {
  TempDir dir;
  const PlanRequest hot_req = reduce_req(8, 16);
  const PlanRequest cold_req = reduce_req(4, 16);
  {
    runtime::PersistentPlanCache disk(dir.str());
    FileStore file(disk);
    file.put(key_of(hot_req), plan_of(hot_req));
    file.put(key_of(cold_req), plan_of(cold_req));
    for (int i = 0; i < 5; ++i) file.note_use(key_of(hot_req));
    file.note_use(key_of(cold_req));
  }  // dtor flushes <dir>/hot.wsrh
  ASSERT_TRUE(fs::exists(dir.path / "hot.wsrh"));
  {
    runtime::PersistentPlanCache disk(dir.str());
    FileStore file(disk);
    const auto top = file.scan(0);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].key, key_of(hot_req));
    EXPECT_EQ(top[0].uses, 5u);
    EXPECT_EQ(top[1].uses, 1u);
    // And the records themselves reload.
    EXPECT_EQ(file.get(key_of(hot_req)).status, StoreStatus::Hit);
  }
}

TEST(FileStore, GarbledSidecarIsAdvisory) {
  TempDir dir;
  const PlanRequest req = reduce_req(8, 16);
  {
    runtime::PersistentPlanCache disk(dir.str());
    FileStore file(disk);
    file.put(key_of(req), plan_of(req));
  }
  std::ofstream(dir.path / "hot.wsrh", std::ios::trunc)
      << "not-a-count !!!\n9 @@not-base64@@\n7 AAAA\n";
  runtime::PersistentPlanCache disk(dir.str());
  FileStore file(disk);  // must not throw; bad lines skipped
  // The store's own keys are still seeded (from load order).
  const auto top = file.scan(0);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, key_of(req));
  EXPECT_EQ(file.get(key_of(req)).status, StoreStatus::Hit);
}

// --- append-path degradation -------------------------------------------------

TEST(PersistentCache, FatalAppendErrnoDegradesToMemoryOnly) {
  TempDir dir;
  runtime::PersistentPlanCache disk(dir.str());
  const PlanRequest first = reduce_req(8, 16);
  ASSERT_TRUE(disk.append(key_of(first), plan_of(first)));
  ASSERT_FALSE(disk.degraded());

  disk.inject_append_errno_for_tests(ENOSPC, 1);
  const PlanRequest second = reduce_req(4, 16);
  EXPECT_FALSE(disk.append(key_of(second), plan_of(second)));
  EXPECT_TRUE(disk.degraded());
  // Degraded is permanent for the process: later appends fail fast and are
  // counted, with no further I/O attempted.
  const PlanRequest third = reduce_req(16, 16);
  EXPECT_FALSE(disk.append(key_of(third), plan_of(third)));
  const auto s = disk.stats();
  EXPECT_TRUE(s.degraded);
  EXPECT_GE(s.store_degraded, 2u);

  // The file holds exactly the pre-failure record — no torn tail: a fresh
  // load sees one intact plan and zero load errors.
  runtime::PersistentPlanCache reopened(dir.str());
  const auto rs = reopened.stats();
  EXPECT_EQ(rs.loaded, 1u);
  EXPECT_EQ(rs.load_errors, 0u);
  EXPECT_NE(reopened.find(key_of(first)), nullptr);
}

TEST(PersistentCache, TransientErrnoDoesNotDegrade) {
  TempDir dir;
  runtime::PersistentPlanCache disk(dir.str());
  disk.inject_append_errno_for_tests(EINTR, 1);
  const PlanRequest req = reduce_req(8, 16);
  EXPECT_FALSE(disk.append(key_of(req), plan_of(req)));
  EXPECT_FALSE(disk.degraded());  // EINTR is not a fatal storage errno
  const PlanRequest next = reduce_req(4, 16);
  EXPECT_TRUE(disk.append(key_of(next), plan_of(next)));
}

// --- fault tolerance policy --------------------------------------------------

struct FakeClock {
  i64 now = 0;
  i64 slept = 0;
  FaultTolerantStore::Policy policy(u32 retries, u32 threshold,
                                    u32 cooldown_ms) {
    FaultTolerantStore::Policy p;
    p.retries = retries;
    p.breaker_threshold = threshold;
    p.breaker_cooldown_ms = cooldown_ms;
    p.clock_ms = [this] { return now; };
    p.sleep_ms = [this](i64 ms) {
      slept += ms;
      now += ms;
    };
    return p;
  }
};

TEST(FaultTolerantStore, RetriesThenSucceeds) {
  MemoryStore mem;
  const PlanRequest req = reduce_req(8, 16);
  mem.put(key_of(req), plan_of(req));
  FlakyStore flaky(mem);
  FakeClock clk;
  FaultTolerantStore ft(flaky, clk.policy(2, 10, 1000));

  flaky.fail_next_gets(2);
  const GetResult r = ft.get(key_of(req));
  EXPECT_EQ(r.status, StoreStatus::Hit);
  EXPECT_NE(r.plan, nullptr);
  EXPECT_EQ(ft.stats().retries, 2u);
  EXPECT_GT(clk.slept, 0);  // backoff actually waited (on the fake clock)
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Closed);
}

TEST(FaultTolerantStore, BreakerFullCycle) {
  MemoryStore mem;
  const PlanRequest req = reduce_req(8, 16);
  mem.put(key_of(req), plan_of(req));
  FlakyStore flaky(mem);
  FakeClock clk;
  // No retries: each failed op is one breaker strike.
  FaultTolerantStore ft(flaky, clk.policy(0, 2, 100));

  // Closed -> Open after `threshold` consecutive failures.
  flaky.fail_next_gets(2, StoreStatus::Timeout);
  EXPECT_EQ(ft.get(key_of(req)).status, StoreStatus::Timeout);
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Closed);
  EXPECT_EQ(ft.get(key_of(req)).status, StoreStatus::Timeout);
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Open);
  EXPECT_EQ(ft.stats().breaker_trips, 1u);

  // Open: fastfail as a clean miss, without touching the backend.
  const u64 gets_before = flaky.stats().gets;
  EXPECT_EQ(ft.get(key_of(req)).status, StoreStatus::Miss);
  EXPECT_EQ(flaky.stats().gets, gets_before);
  EXPECT_EQ(ft.stats().breaker_fastfails, 1u);

  // Cooldown expires -> half-open; a failed probe goes straight back open.
  clk.now += 100;
  flaky.fail_next_gets(1);
  EXPECT_EQ(ft.get(key_of(req)).status, StoreStatus::Error);
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Open);
  EXPECT_EQ(ft.stats().breaker_trips, 2u);

  // Second cooldown -> successful probe closes the breaker for good.
  clk.now += 100;
  EXPECT_EQ(ft.get(key_of(req)).status, StoreStatus::Hit);
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Closed);
  EXPECT_EQ(ft.stats().breaker_state, "closed");
}

TEST(FaultTolerantStore, ProbeNeverRetries) {
  MemoryStore mem;
  FlakyStore flaky(mem);
  FakeClock clk;
  FaultTolerantStore ft(flaky, clk.policy(5, 1, 100));

  flaky.fail_next_gets(1);
  const PlanKey key = key_of(reduce_req(8, 16));
  // Retries exhaust the injected failure, then Miss (key absent): but with
  // threshold 1 a fully failed op opens the breaker. Force that:
  flaky.fail_next_gets(6);  // covers 1 attempt + 5 retries
  EXPECT_EQ(ft.get(key).status, StoreStatus::Error);
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Open);

  clk.now += 100;
  const u64 retries_before = ft.stats().retries;
  flaky.fail_next_gets(1);
  EXPECT_EQ(ft.get(key).status, StoreStatus::Error);  // the probe, 1 attempt
  EXPECT_EQ(ft.stats().retries, retries_before);      // probes never retry
}

TEST(FaultTolerantStore, MissIsBreakerSuccess) {
  MemoryStore mem;  // empty: every get is an honest Miss
  FlakyStore flaky(mem);
  FakeClock clk;
  FaultTolerantStore ft(flaky, clk.policy(0, 2, 100));
  const PlanKey key = key_of(reduce_req(8, 16));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ft.get(key).status, StoreStatus::Miss);
  }
  EXPECT_EQ(ft.breaker_state(), FaultTolerantStore::Breaker::Closed);
  EXPECT_EQ(ft.stats().breaker_trips, 0u);
}

// --- peer wire protocol ------------------------------------------------------

/// A scripted one-connection-at-a-time peer: reads request lines, answers
/// with whatever the handler returns. nullopt = close the connection;
/// "" = never reply (deadline test). Accepts again after a drop, like a
/// real daemon surviving its client's reconnects.
class MockPeer {
 public:
  using Handler = std::function<std::optional<std::string>(const std::string&)>;

  explicit MockPeer(Handler handler) : handler_(std::move(handler)) {
    static std::atomic<int> counter{0};
    path_ = (fs::temp_directory_path() /
             ("wsr_mockpeer_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr), 0);
    EXPECT_EQ(::listen(listen_fd_, 4), 0);
    thread_ = std::thread([this] { accept_loop(); });
  }

  ~MockPeer() { stop(); }

  void stop() {
    if (stopped_.exchange(true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
    ::unlink(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  void accept_loop() {
    while (!stopped_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      serve_conn(fd);
      ::close(fd);
    }
  }

  void serve_conn(int fd) {
    std::string buf;
    char chunk[4096];
    while (!stopped_.load()) {
      const std::size_t nl = buf.find('\n');
      if (nl == std::string::npos) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) return;  // client gone (or deadline-dropped)
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      const std::optional<std::string> reply = handler_(line);
      if (!reply.has_value()) return;
      std::size_t off = 0;
      while (off < reply->size()) {
        const ssize_t n = ::send(fd, reply->data() + off, reply->size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
  }

  Handler handler_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

PeerStore::Options peer_options(const std::string& path, u32 timeout_ms = 2000,
                                std::size_t max_reply = 64u << 20) {
  PeerStore::Options opt;
  opt.target = "unix:" + path;
  opt.timeout_ms = timeout_ms;
  opt.max_reply_bytes = max_reply;
  return opt;
}

TEST(PeerStore, HitMissAndPutAgainstScriptedPeer) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);
  const std::string record_b64 =
      base64_encode(wsr::store::serialize_plan_record(key, *plan));

  std::atomic<int> puts_seen{0};
  MockPeer peer([&](const std::string& line) -> std::optional<std::string> {
    if (line.find("\"cache_put\"") != std::string::npos) {
      puts_seen.fetch_add(1);
      return "{\"ok\":true}\n";
    }
    if (line.find(record_b64.substr(0, 32)) != std::string::npos ||
        line.find("\"cache_get\"") != std::string::npos) {
      return "{\"hit\":true,\"schema\":2,\"record\":\"" + record_b64 + "\"}\n";
    }
    return "{\"hit\":false}\n";
  });

  PeerStore store(peer_options(peer.path()));
  const GetResult r = store.get(key);
  ASSERT_EQ(r.status, StoreStatus::Hit);
  ASSERT_NE(r.plan, nullptr);
  EXPECT_EQ(r.plan->algorithm, plan->algorithm);
  EXPECT_TRUE(store.put(key, plan));
  EXPECT_EQ(puts_seen.load(), 1);
  const auto s = store.stats();
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.errors, 0u);
}

TEST(PeerStore, CleanMissReply) {
  MockPeer peer([](const std::string&) -> std::optional<std::string> {
    return "{\"hit\":false}\n";
  });
  PeerStore store(peer_options(peer.path()));
  EXPECT_EQ(store.get(key_of(reduce_req(8, 16))).status, StoreStatus::Miss);
  EXPECT_EQ(store.stats().misses, 1u);
}

TEST(PeerStore, EveryDamagedReplyIsAFailureNeverAPlan) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);
  const std::string good = wsr::store::serialize_plan_record(key, *plan);
  std::string torn = good;
  torn[torn.size() / 2] = static_cast<char>(torn[torn.size() / 2] ^ 0x20);

  // Wrong key: a record for a different shape, validly framed.
  const PlanRequest other_req = reduce_req(4, 16);
  const std::string mis_keyed =
      wsr::store::serialize_plan_record(key_of(other_req), *plan_of(other_req));

  const std::vector<std::string> bad_replies = {
      "not json at all\n",
      "{\"hit\":\"yes\"}\n",                    // hit is not a Bool
      "{\"error\":\"overloaded\"}\n",           // in-band daemon error
      "{\"hit\":true}\n",                       // hit without a record
      "{\"hit\":true,\"record\":\"@@@\"}\n",    // undecodable base64
      "{\"hit\":true,\"record\":\"AAAA\"}\n",   // decodes, not a record
      "{\"hit\":true,\"record\":\"" + base64_encode(torn) + "\"}\n",
      "{\"hit\":true,\"record\":\"" + base64_encode(mis_keyed) + "\"}\n",
  };
  std::atomic<std::size_t> next{0};
  MockPeer peer([&](const std::string&) -> std::optional<std::string> {
    return bad_replies[next.fetch_add(1) % bad_replies.size()];
  });
  PeerStore store(peer_options(peer.path()));
  for (std::size_t i = 0; i < bad_replies.size(); ++i) {
    const GetResult r = store.get(key);
    EXPECT_EQ(r.status, StoreStatus::Error) << "reply " << i;
    EXPECT_EQ(r.plan, nullptr) << "reply " << i;
  }
  EXPECT_EQ(store.stats().errors, bad_replies.size());
}

TEST(PeerStore, UnresolvableAlgorithmIsAMiss) {
  // A record that decodes bit-exactly but names an algorithm this build
  // does not register: unusable, but the peer was honest — a Miss, not an
  // Error (it must not strike the breaker).
  const PlanRequest req = reduce_req(8, 16);
  PlanKey key = key_of(req);
  key.algorithm = "NoSuchAlgorithm";
  const std::string record_b64 =
      base64_encode(wsr::store::serialize_plan_record(key, *plan_of(req)));
  MockPeer peer([&](const std::string&) -> std::optional<std::string> {
    return "{\"hit\":true,\"schema\":2,\"record\":\"" + record_b64 + "\"}\n";
  });
  PeerStore store(peer_options(peer.path()));
  EXPECT_EQ(store.get(key).status, StoreStatus::Miss);
}

TEST(PeerStore, EofMidReplyIsAnError) {
  MockPeer peer([](const std::string&) -> std::optional<std::string> {
    return std::nullopt;  // close without replying
  });
  PeerStore store(peer_options(peer.path()));
  EXPECT_EQ(store.get(key_of(reduce_req(8, 16))).status, StoreStatus::Error);
}

TEST(PeerStore, OversizedReplyIsAnError) {
  MockPeer peer([](const std::string&) -> std::optional<std::string> {
    return "{\"hit\":false,\"pad\":\"" + std::string(4096, 'x') + "\"}\n";
  });
  PeerStore store(peer_options(peer.path(), 2000, /*max_reply=*/256));
  EXPECT_EQ(store.get(key_of(reduce_req(8, 16))).status, StoreStatus::Error);
}

TEST(PeerStore, DeadlineBlownIsATimeout) {
  MockPeer peer([](const std::string&) -> std::optional<std::string> {
    return "";  // swallow the request, never answer
  });
  PeerStore store(peer_options(peer.path(), /*timeout_ms=*/60));
  EXPECT_EQ(store.get(key_of(reduce_req(8, 16))).status, StoreStatus::Timeout);
  EXPECT_EQ(store.stats().timeouts, 1u);
}

TEST(PeerStore, RefusedConnectIsAnErrorAndRecovers) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  std::string path;
  {
    MockPeer ghost([](const std::string&) { return std::nullopt; });
    path = ghost.path();
  }  // socket file unlinked: connects now fail
  PeerStore store(peer_options(path));
  EXPECT_EQ(store.get(key).status, StoreStatus::Error);

  // The same driver reconnects once a peer appears at the target.
  const std::string record_b64 =
      base64_encode(wsr::store::serialize_plan_record(key, *plan_of(req)));
  MockPeer revived([&](const std::string&) -> std::optional<std::string> {
    return "{\"hit\":true,\"schema\":2,\"record\":\"" + record_b64 + "\"}\n";
  });
  PeerStore recovered(peer_options(revived.path()));
  // Point the original driver's target at nothing; use a fresh driver for
  // the revived peer (targets are fixed at construction).
  EXPECT_EQ(recovered.get(key).status, StoreStatus::Hit);
}

// --- tier chain through PlanCache --------------------------------------------

TEST(PlanCacheTiers, TierHitPromotesAndWritesBack) {
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);

  MemoryStore near_tier, far_tier;
  far_tier.put(key, plan_of(req));
  PlanCache cache;
  cache.attach_tier(&near_tier);
  cache.attach_tier(&far_tier);

  PlanSource source = PlanSource::Planned;
  const auto plan = cache.get_or_plan(test_planner(), req, &source);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(source, PlanSource::DiskHit);  // MemoryStore tags as DiskHit
  // Write-back: the nearer tier that missed now holds the plan.
  EXPECT_EQ(near_tier.get(key).status, StoreStatus::Hit);
  // And the memory tier answers the next request directly.
  source = PlanSource::Planned;
  cache.get_or_plan(test_planner(), req, &source);
  EXPECT_EQ(source, PlanSource::MemoryHit);
}

TEST(PlanCacheTiers, TierFailureFallsThroughToPlanning) {
  const PlanRequest req = reduce_req(8, 16);
  MemoryStore mem;
  mem.put(key_of(req), plan_of(req));
  FlakyStore flaky(mem);
  flaky.set_failure_rate(256, StoreStatus::Timeout);  // every op fails
  PlanCache cache;
  cache.attach_tier(&flaky);

  PlanSource source = PlanSource::MemoryHit;
  const auto plan = cache.get_or_plan(test_planner(), req, &source);
  ASSERT_NE(plan, nullptr);  // served fresh, silently
  EXPECT_EQ(source, PlanSource::Planned);
  EXPECT_EQ(cache.misses(), 1u);
}

// --- serving-side cache verbs ------------------------------------------------

std::string serve_one(serving::Core& core, const std::string& line) {
  std::vector<serving::Request> batch;
  batch.push_back(serving::parse_request(line));
  return core.serve_batch(batch);
}

std::string strip_newline(std::string s) {
  if (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

TEST(ServingCacheVerbs, PutGetRoundTripThroughCore) {
  TempDir dir;
  serving::Core::Options opts;
  opts.cache_dir = dir.str();
  opts.serve_cache = true;
  serving::Core core(opts);

  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  const auto plan = plan_of(req);

  // Miss before anything is cached.
  const std::string get_line = strip_newline(PeerStore::get_request_line(key));
  EXPECT_EQ(serve_one(core, get_line), "{\"hit\":false}\n");

  // Put, then the same get answers with a decodable record for the key.
  const std::string put_line =
      strip_newline(PeerStore::put_request_line(key, *plan));
  EXPECT_EQ(serve_one(core, put_line), "{\"ok\":true}\n");
  const std::string reply = serve_one(core, get_line);
  const std::string prefix = "{\"hit\":true,\"schema\":2,\"record\":\"";
  ASSERT_EQ(reply.rfind(prefix, 0), 0u) << reply;
  const auto bytes = base64_decode(
      reply.substr(prefix.size(), reply.size() - prefix.size() - 3));
  ASSERT_TRUE(bytes.has_value());
  PlanKey got_key;
  Plan got_plan;
  ASSERT_TRUE(parse_plan_record(*bytes, &got_key, &got_plan));
  EXPECT_EQ(got_key, key);

  // The put also landed in the file tier: a fresh Core over the same dir
  // serves it without a put.
  serving::Core::Options reopen = opts;
  serving::Core core2(reopen);
  EXPECT_EQ(serve_one(core2, get_line).rfind(prefix, 0), 0u);
}

TEST(ServingCacheVerbs, RejectsAndGates) {
  TempDir dir;
  serving::Core::Options opts;
  opts.cache_dir = dir.str();
  opts.serve_cache = true;
  serving::Core core(opts);

  // Malformed payloads are in-band errors, never crashes.
  EXPECT_EQ(serve_one(core,
                      "{\"verb\":\"cache_get\",\"schema\":2,\"key\":\"@@\"}"),
            "{\"error\":\"bad_cache_key\"}\n");
  EXPECT_EQ(
      serve_one(core,
                "{\"verb\":\"cache_put\",\"schema\":2,\"record\":\"AAAA\"}"),
      "{\"error\":\"bad_cache_record\"}\n");
  EXPECT_EQ(serve_one(core, "{\"verb\":\"cache_get\"}"),
            "{\"error\":\"\\\"key\\\" must be a base64 string\"}\n");

  // A foreign schema is a clean miss / refusal, not an error.
  EXPECT_EQ(serve_one(core,
                      "{\"verb\":\"cache_get\",\"schema\":999,\"key\":\"AA==\"}"),
            "{\"hit\":false}\n");

  // Without --serve-cache the verbs are rejected outright.
  serving::Core::Options off;
  serving::Core gated(off);
  const PlanKey key = key_of(reduce_req(8, 16));
  EXPECT_EQ(serve_one(gated, strip_newline(PeerStore::get_request_line(key))),
            "{\"error\":\"cache_disabled\"}\n");
}

TEST(ServingCacheVerbs, PutRefusesAnInvalidSchedule) {
  TempDir dir;
  serving::Core::Options opts;
  opts.cache_dir = dir.str();
  opts.serve_cache = true;
  serving::Core core(opts);

  // A structurally valid record carrying an unservable schedule: zero the
  // first routing rule's count (validate: "every rule has count > 0").
  const PlanRequest req = reduce_req(8, 16);
  const PlanKey key = key_of(req);
  Plan bad = *plan_of(req);
  ASSERT_FALSE(bad.schedule.rules.empty());
  bool corrupted = false;
  for (auto& pe_rules : bad.schedule.rules) {
    if (!pe_rules.empty()) {
      pe_rules[0].count = 0;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_EQ(serve_one(core, strip_newline(PeerStore::put_request_line(
                                key, bad))),
            "{\"ok\":false}\n");
  // The refusal is counted and the record never reaches any tier.
  EXPECT_NE(serve_one(core, "{\"verb\":\"stats\"}")
                .find("\"invalid_plans\":1"),
            std::string::npos);
  EXPECT_EQ(serve_one(core,
                      strip_newline(PeerStore::get_request_line(key))),
            "{\"hit\":false}\n");
}

TEST(ServingCacheVerbs, DiskRestoreIsRevalidatedBeforeServing) {
  TempDir dir;
  const PlanRequest req = reduce_req(8, 16);
  {
    // Seed the persistent tier with a poisoned record under the exact key
    // a plan request resolves to: decodes fine, fails flow-level checks.
    runtime::PersistentPlanCache disk(dir.str());
    FileStore file(disk);
    auto bad = std::make_shared<Plan>(*plan_of(req));
    for (auto& pe_rules : bad->schedule.rules) {
      if (!pe_rules.empty()) {
        pe_rules[0].count = 0;
        break;
      }
    }
    file.put(key_of(req), bad);
  }
  serving::Core::Options opts;
  opts.cache_dir = dir.str();
  serving::Core core(opts);

  // The disk hit is refused in-band instead of serving a broken plan.
  const std::string plan_line =
      "{\"collective\":\"reduce\",\"grid\":\"8\",\"bytes\":64}";
  EXPECT_EQ(serve_one(core, plan_line), "{\"error\":\"invalid_plan\"}\n");
  EXPECT_NE(serve_one(core, "{\"verb\":\"stats\"}")
                .find("\"invalid_plans\":1"),
            std::string::npos);
}

TEST(ServingCacheVerbs, PrefetchWarmsHottestShapes) {
  TempDir dir;
  const PlanRequest hot_req = reduce_req(8, 16);
  const PlanRequest cold_req = reduce_req(4, 16);
  {
    runtime::PersistentPlanCache disk(dir.str());
    FileStore file(disk);
    file.put(key_of(hot_req), plan_of(hot_req));
    file.put(key_of(cold_req), plan_of(cold_req));
    for (int i = 0; i < 3; ++i) file.note_use(key_of(hot_req));
  }
  serving::Core::Options opts;
  opts.cache_dir = dir.str();
  opts.prefetch = 1;
  serving::Core core(opts);
  EXPECT_EQ(core.prefetched(), 1u);

  // The hottest shape is a memory hit on the very first request.
  std::vector<serving::Request> batch;
  batch.push_back(serving::parse_request(
      "{\"collective\":\"reduce\",\"grid\":\"8\",\"bytes\":64}"));
  const std::string out = core.serve_batch(batch);
  EXPECT_NE(out.find("\"cache_tier\":\"memory\""), std::string::npos) << out;
}

}  // namespace
}  // namespace wsr::store
