// Tests of the runtime planner: model-driven selection and plan execution.
#include "runtime/planner.hpp"

#include <gtest/gtest.h>

#include "sim_test_utils.hpp"

namespace wsr::runtime {
namespace {

class PlannerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { planner_ = new Planner(128); }
  static void TearDownTestSuite() {
    delete planner_;
    planner_ = nullptr;
  }
  static Planner* planner_;
};
Planner* PlannerFixture::planner_ = nullptr;

TEST_F(PlannerFixture, AutoSelectionNeverWorseThanAnyFixedAlgo) {
  for (u32 p : {4u, 16u, 64u, 128u}) {
    for (u32 b : {1u, 16u, 256u, 4096u}) {
      const Plan plan = planner_->plan_reduce_1d(p, b);
      for (ReduceAlgo a : kFixedReduceAlgos) {
        EXPECT_LE(plan.prediction.cycles,
                  planner_->predict_reduce_1d(a, p, b).cycles)
            << "P=" << p << " B=" << b << " vs " << name(a);
      }
    }
  }
}

TEST_F(PlannerFixture, AutoPlansExecuteCorrectly) {
  for (u32 p : {4u, 16u, 64u}) {
    for (u32 b : {1u, 64u, 1024u}) {
      testing::verify_ok(planner_->plan_reduce_1d(p, b).schedule);
      testing::verify_ok(planner_->plan_allreduce_1d(p, b).schedule);
    }
  }
}

TEST_F(PlannerFixture, ExplicitAlgorithmIsHonored) {
  const Plan plan = planner_->plan_reduce_1d(32, 64, ReduceAlgo::Star);
  EXPECT_EQ(plan.algorithm, "Star");
  EXPECT_EQ(plan.schedule.name, "reduce-1d-Star");
}

TEST_F(PlannerFixture, SelectionFollowsTheRegimes) {
  // Scalars -> Star; huge vectors -> Chain (Fig. 1 / Section 5.7). For huge
  // B the Auto-Gen tree degenerates to the chain, so either label is valid.
  EXPECT_EQ(planner_->plan_reduce_1d(128, 1).algorithm, "Star");
  const std::string huge = planner_->plan_reduce_1d(4, 1u << 15).algorithm;
  EXPECT_TRUE(huge == "Chain" || huge == "AutoGen") << huge;
}

TEST_F(PlannerFixture, RingSelectedOnlyInItsBand) {
  // Fig. 8: ring wins for few PEs and very long vectors.
  const Plan big = planner_->plan_allreduce_1d(4, 1u << 15);
  EXPECT_EQ(big.algorithm, "Ring");
  const Plan small = planner_->plan_allreduce_1d(64, 64);
  EXPECT_NE(small.algorithm, "Ring");
}

TEST_F(PlannerFixture, LowerBoundIsBelowEveryModelCost) {
  // The bound holds within the cost model; the Star's sharper pipeline
  // refinement (used for runtime prediction) can dip a few cycles below it
  // at tiny B, exactly as in the paper's Fig. 1 construction.
  for (u32 p : {8u, 64u}) {
    for (u32 b : {1u, 256u}) {
      const double lb = planner_->reduce_1d_lower_bound(p, b);
      for (ReduceAlgo a :
           {ReduceAlgo::Chain, ReduceAlgo::Tree, ReduceAlgo::TwoPhase,
            ReduceAlgo::AutoGen}) {
        EXPECT_LE(lb, static_cast<double>(
                          planner_->predict_reduce_1d(a, p, b).cycles))
            << name(a) << " p=" << p << " B=" << b;
      }
      EXPECT_LE(lb, static_cast<double>(
                        predict_star_reduce_eq1(p, b, planner_->machine())
                            .cycles));
    }
  }
}

TEST_F(PlannerFixture, Plans2D) {
  const GridShape g{16, 16};
  const Plan r = planner_->plan_reduce_2d(g, 64);
  testing::verify_ok(r.schedule);
  const Plan a = planner_->plan_allreduce_2d(g, 64);
  testing::verify_ok(a.schedule);
  const Plan b = planner_->plan_broadcast_2d(g, 64);
  testing::verify_ok(b.schedule, /*is_broadcast=*/true);
}

TEST_F(PlannerFixture, SnakeSelectedForSmallGridHugeVector) {
  const Plan plan = planner_->plan_reduce_2d({4, 4}, 1u << 14);
  EXPECT_EQ(plan.algorithm, "Snake");
}

TEST_F(PlannerFixture, PredictionsConsistentWithPlans) {
  const Plan plan = planner_->plan_allreduce_1d(64, 256, ReduceAlgo::TwoPhase);
  EXPECT_EQ(plan.prediction.cycles,
            planner_->predict_allreduce_1d(ReduceAlgo::TwoPhase, 64, 256).cycles);
}

}  // namespace
}  // namespace wsr::runtime
