// Property-based tests: random pre-order reduction trees must compile to
// correct, deadlock-free schedules whose simulated runtime respects the
// model's synthesis of their own cost terms; random machine parameters must
// preserve the model/simulator agreement; malformed schedules must be
// rejected statically.
#include <gtest/gtest.h>

#include <random>

#include "autogen/dp.hpp"
#include "collectives/builder.hpp"
#include "collectives/collectives.hpp"
#include "model/cost.hpp"
#include "model/costs1d.hpp"
#include "runtime/verify.hpp"
#include "sim_test_utils.hpp"
#include "wse/checks.hpp"

namespace wsr {
namespace {

/// Uniformly random valid pre-order tree on `n` vertices: recursively pick
/// the size of the root's last child subtree.
autogen::ReduceTree random_tree(u32 n, std::mt19937& rng) {
  autogen::ReduceTree t;
  t.children.resize(n);
  // build(base, size): shapes the subtree on labels [base, base + size).
  std::vector<std::pair<u32, u32>> stack{{0, n}};
  while (!stack.empty()) {
    auto [base, size] = stack.back();
    stack.pop_back();
    u32 remaining = size - 1;  // vertices below `base`
    u32 child_base = base + 1;
    while (remaining > 0) {
      std::uniform_int_distribution<u32> dist(1, remaining);
      const u32 sub = dist(rng);
      t.children[base].push_back(child_base);
      stack.push_back({child_base, sub});
      child_base += sub;
      remaining -= sub;
    }
  }
  return t;
}

TEST(RandomTrees, AreValidPreorder) {
  std::mt19937 rng(1234);
  for (u32 iter = 0; iter < 200; ++iter) {
    const u32 n = 2 + rng() % 30;
    EXPECT_TRUE(random_tree(n, rng).is_valid_preorder());
  }
}

TEST(RandomTrees, CompileAndReduceCorrectly) {
  // Every valid pre-order tree - not just DP-optimal ones - must execute
  // deadlock-free and produce the exact sum (this covers the codegen's
  // rule-ordering argument for nested edges).
  std::mt19937 rng(42);
  for (u32 iter = 0; iter < 60; ++iter) {
    const u32 n = 2 + rng() % 24;
    const u32 b = 1 + rng() % 96;
    const autogen::ReduceTree tree = random_tree(n, rng);
    collectives::Schedule s({n, 1}, b, "random-tree-" + std::to_string(iter));
    collectives::build_autogen_reduce(s, collectives::Lane::row(s.grid, 0), 0,
                                      1, tree, collectives::no_deps(s));
    s.result_pes.push_back(0);
    wse::check_valid(s);
    testing::verify_ok(s);
  }
}

TEST(RandomTrees, SimulatedTimeRespectsTheirOwnModelSynthesis) {
  // For any tree, Eq. (1) applied to the tree's own terms (with the
  // discipline contention) should track the simulated runtime.
  std::mt19937 rng(7);
  const MachineParams mp;
  for (u32 iter = 0; iter < 25; ++iter) {
    const u32 n = 4 + rng() % 20;
    const u32 b = 1 + rng() % 128;
    const autogen::ReduceTree tree = random_tree(n, rng);
    collectives::Schedule s({n, 1}, b, "rt-model-" + std::to_string(iter));
    collectives::build_autogen_reduce(s, collectives::Lane::row(s.grid, 0), 0,
                                      1, tree, collectives::no_deps(s));
    s.result_pes.push_back(0);
    const auto r = runtime::verify_on_fabric(s);
    ASSERT_TRUE(r.ok) << r.error;
    CostTerms t;
    t.energy = i64{b} * tree.energy();
    t.distance = n - 1;
    t.depth = tree.depth();
    t.contention = i64{b} * tree.max_fanout();
    t.links = n - 1;
    const i64 synthesized = estimate_cycles(t, mp);
    // Eq. (1) is only claimed tight for well-shaped trees (the DP-optimal
    // ones track the simulator within 20%, see test_reduce_1d). For
    // arbitrary random trees the max-contention term undercounts sequential
    // arrival serialization, so the synthesis brackets the simulated time
    // within a constant factor instead.
    EXPECT_GE(static_cast<double>(r.cycles),
              0.75 * static_cast<double>(synthesized))
        << "tree ran faster than its own cost terms allow";
    EXPECT_LE(static_cast<double>(r.cycles),
              2.5 * static_cast<double>(synthesized) + 64)
        << "tree ran far slower than its synthesis";
  }
}

TEST(RandomParams, ModelTracksSimulatorAcrossRampLatencies) {
  std::mt19937 rng(99);
  for (u32 iter = 0; iter < 12; ++iter) {
    MachineParams mp;
    mp.ramp_latency = 1 + rng() % 8;
    const u32 p = 4 + rng() % 28;
    const u32 b = 1 + rng() % 256;
    for (ReduceAlgo a : {ReduceAlgo::Chain, ReduceAlgo::Star, ReduceAlgo::Tree}) {
      const wse::Schedule s = collectives::make_reduce_1d(a, p, b);
      wse::FabricOptions opt;
      opt.ramp_latency = mp.ramp_latency;
      const auto inputs = wse::make_inputs(s, runtime::canonical_input);
      const i64 sim = wse::run_fabric(s, inputs, opt).cycles;
      const i64 model = a == ReduceAlgo::Star
                            ? predict_star_reduce(p, b, mp).cycles
                            : predict_reduce_1d(a, p, b, mp).cycles;
      testing::expect_close(sim, model, 0.25, 24,
                            std::string(name(a)) + " T_R=" +
                                std::to_string(mp.ramp_latency));
    }
  }
}

TEST(FailureInjection, ValidatorCatchesMutatedSchedules) {
  // Take a correct schedule and break it in assorted ways; validate() must
  // flag every mutation.
  std::mt19937 rng(5);
  for (u32 iter = 0; iter < 40; ++iter) {
    wse::Schedule s = collectives::make_reduce_1d(ReduceAlgo::TwoPhase, 16, 8);
    ASSERT_TRUE(validate(s).empty());
    // Pick a PE with rules and mutate one rule.
    u32 pe = rng() % 16;
    while (s.rules[pe].empty()) pe = (pe + 1) % 16;
    wse::RouteRule& r = s.rules[pe][rng() % s.rules[pe].size()];
    switch (iter % 4) {
      case 0: r.count += 1; break;                       // count mismatch
      case 1: r.forward = 0; break;                      // empty forward
      case 2: r.count = 0; break;                        // zero count
      case 3: r.forward |= dir_bit(r.accept);            // U-turn
               if (r.accept == Dir::Ramp) r.count += 1;  // still invalid
               break;
    }
    EXPECT_FALSE(validate(s).empty()) << "mutation " << iter % 4;
  }
}

TEST(FailureInjection, FuzzedLaneShapesAreRejectedOrWork) {
  // Chain accepts any adjacent path; feeding it non-adjacent lanes must
  // trip the builder's precondition (death by WSR_ASSERT), while valid
  // random serpentine paths must work.
  std::mt19937 rng(11);
  const GridShape g{6, 6};
  for (u32 iter = 0; iter < 20; ++iter) {
    // A random monotone staircase from (5,5) to (0,0) is always adjacent.
    collectives::Lane lane;
    u32 x = 0, y = 0;
    lane.pes.push_back(g.pe_id(x, y));
    while (x < 5 || y < 5) {
      if (x == 5 || (y < 5 && rng() % 2)) {
        ++y;
      } else {
        ++x;
      }
      lane.pes.push_back(g.pe_id(x, y));
    }
    collectives::Schedule s(g, 16, "staircase");
    const auto fin = collectives::build_chain_reduce(s, lane, 0, 1,
                                                     collectives::no_deps(s));
    (void)fin;
    wse::check_valid(s);
    // Only the lane PEs participate, so the expected result is the lane sum
    // (verify_on_fabric's all-PE expectation does not apply here).
    auto inputs = wse::make_inputs(s, runtime::canonical_input);
    const auto res = wse::run_fabric(s, inputs);
    for (u32 j = 0; j < s.vec_len; ++j) {
      float expect = 0;
      for (u32 pe : lane.pes) expect += runtime::canonical_input(pe, j);
      ASSERT_EQ(res.memory[lane.pes[0]][j], expect) << "iter " << iter;
    }
  }
}

TEST(Determinism, RepeatedRunsBitIdentical) {
  static autogen::AutoGenModel model(24, MachineParams{});
  for (ReduceAlgo a : {ReduceAlgo::TwoPhase, ReduceAlgo::AutoGen}) {
    const wse::Schedule s = collectives::make_reduce_1d(a, 24, 96, &model);
    const auto r1 = runtime::verify_on_fabric(s);
    const auto r2 = runtime::verify_on_fabric(s);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.wavelet_hops, r2.wavelet_hops);
    EXPECT_EQ(r1.max_ramp_wavelets, r2.max_ramp_wavelets);
  }
}

}  // namespace
}  // namespace wsr
