// Parameterized correctness + timing tests for every 1D Reduce pattern.
#include <gtest/gtest.h>

#include "autogen/dp.hpp"
#include "collectives/collectives.hpp"
#include "model/costs1d.hpp"
#include "runtime/planner.hpp"
#include "sim_test_utils.hpp"

namespace wsr {
namespace {

const MachineParams kMp{};

struct Case {
  ReduceAlgo algo;
  u32 p;
  u32 b;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(name(info.param.algo)) + "_P" +
         std::to_string(info.param.p) + "_B" + std::to_string(info.param.b);
}

class Reduce1D : public ::testing::TestWithParam<Case> {
 protected:
  static const autogen::AutoGenModel& model() {
    static autogen::AutoGenModel m(128, kMp);
    return m;
  }
};

TEST_P(Reduce1D, ComputesExactSum) {
  const auto [algo, p, b] = GetParam();
  const wse::Schedule s = collectives::make_reduce_1d(algo, p, b, &model());
  testing::verify_ok(s);
}

TEST_P(Reduce1D, SimulatorTracksModel) {
  const auto [algo, p, b] = GetParam();
  const wse::Schedule s = collectives::make_reduce_1d(algo, p, b, &model());
  const auto r = runtime::verify_on_fabric(s);
  ASSERT_TRUE(r.ok) << r.error;
  const runtime::Planner planner(128, kMp);
  const i64 predicted = planner.predict_reduce_1d(algo, p, b).cycles;
  // The paper reports 12-35% mean model error against hardware; our simulator
  // idealizes the same way the model does, so we hold it to 20% + a small
  // constant for ramp/boundary conventions.
  testing::expect_close(r.cycles, predicted, 0.20, 32, "reduce cycles");
}

TEST_P(Reduce1D, MeasuredEnergyMatchesModelTerms) {
  const auto [algo, p, b] = GetParam();
  if (algo == ReduceAlgo::AutoGen) return;  // terms come from the DP tree
  const wse::Schedule s = collectives::make_reduce_1d(algo, p, b, &model());
  const auto r = runtime::verify_on_fabric(s);
  ASSERT_TRUE(r.ok);
  const Prediction pred = predict_reduce_1d(algo, p, b, kMp);
  // Tree energy for non-power-of-two P is a ceil-ed estimate; others exact.
  if (algo == ReduceAlgo::Tree) {
    testing::expect_close(r.wavelet_hops, pred.terms.energy, 0.25, 8, "energy");
  } else {
    EXPECT_EQ(r.wavelet_hops, pred.terms.energy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Reduce1D,
    ::testing::ValuesIn([] {
      std::vector<Case> cases;
      for (ReduceAlgo a : {ReduceAlgo::Star, ReduceAlgo::Chain, ReduceAlgo::Tree,
                           ReduceAlgo::TwoPhase, ReduceAlgo::AutoGen}) {
        for (u32 p : {2u, 3u, 4u, 7u, 16u, 33u, 64u}) {
          for (u32 b : {1u, 2u, 13u, 64u, 256u}) {
            cases.push_back({a, p, b});
          }
        }
      }
      return cases;
    }()),
    case_name);

// --- regime-specific tighter checks ----------------------------------------

TEST(Reduce1DTiming, ChainApproachesContentionBound) {
  // B >> T_R * P: chain runtime ~ B (Lemma 5.2 discussion).
  const wse::Schedule s = collectives::make_reduce_1d(ReduceAlgo::Chain, 8, 4096);
  const auto r = testing::verify_ok(s);
  testing::expect_close(r.cycles, predict_chain_reduce(8, 4096, kMp).cycles,
                        0.03, 8, "chain large-B");
}

TEST(Reduce1DTiming, StarScalarIsPerfectPipeline) {
  // Section 5.1: B = 1 star forms a pipeline, runtime ~ P - 1, not 3P/2.
  const wse::Schedule s = collectives::make_reduce_1d(ReduceAlgo::Star, 64, 1);
  const auto r = testing::verify_ok(s);
  testing::expect_close(r.cycles, 63 + 5, 0.05, 6, "star scalar");
}

TEST(Reduce1DTiming, TreeBeatsChainForScalars) {
  const auto chain =
      testing::verify_ok(collectives::make_reduce_1d(ReduceAlgo::Chain, 64, 1));
  const auto tree =
      testing::verify_ok(collectives::make_reduce_1d(ReduceAlgo::Tree, 64, 1));
  EXPECT_LT(tree.cycles, chain.cycles / 2);
}

TEST(Reduce1DTiming, ChainBeatsTreeForHugeVectors) {
  const auto chain = testing::verify_ok(
      collectives::make_reduce_1d(ReduceAlgo::Chain, 16, 4096));
  const auto tree = testing::verify_ok(
      collectives::make_reduce_1d(ReduceAlgo::Tree, 16, 4096));
  EXPECT_LT(chain.cycles, tree.cycles);
}

TEST(Reduce1DTiming, TwoPhaseBetweenChainAndStarAtIntermediateSizes) {
  const u32 p = 64, b = 64;  // B ~ P: two-phase's sweet spot
  const auto two = testing::verify_ok(
      collectives::make_reduce_1d(ReduceAlgo::TwoPhase, p, b));
  const auto chain =
      testing::verify_ok(collectives::make_reduce_1d(ReduceAlgo::Chain, p, b));
  const auto star =
      testing::verify_ok(collectives::make_reduce_1d(ReduceAlgo::Star, p, b));
  EXPECT_LT(two.cycles, chain.cycles);
  EXPECT_LT(two.cycles, star.cycles);
}

TEST(Reduce1DTiming, AutoGenNeverLosesBadly) {
  // Auto-Gen must track the best fixed pattern within a modest margin on
  // the simulator too (paper: it matches or exceeds them).
  static autogen::AutoGenModel model(96, kMp);
  for (u32 p : {8u, 32u, 96u}) {
    for (u32 b : {1u, 32u, 512u}) {
      const auto ag = testing::verify_ok(
          collectives::make_reduce_1d(ReduceAlgo::AutoGen, p, b, &model));
      i64 best_fixed = INT64_MAX;
      for (ReduceAlgo a : kFixedReduceAlgos) {
        const auto r =
            testing::verify_ok(collectives::make_reduce_1d(a, p, b, &model));
        best_fixed = std::min(best_fixed, r.cycles);
      }
      EXPECT_LE(static_cast<double>(ag.cycles),
                1.15 * static_cast<double>(best_fixed) + 16)
          << "P=" << p << " B=" << b;
    }
  }
}

TEST(Reduce1DTiming, TwoPhaseGroupSizeDefaultNearOptimal) {
  // Sweep S and check the sqrt(P) default is within 15% of the best S.
  const u32 p = 64, b = 128;
  i64 best = INT64_MAX;
  for (u32 s_param : {2u, 4u, 8u, 16u, 32u}) {
    const auto r = testing::verify_ok(collectives::make_reduce_1d(
        ReduceAlgo::TwoPhase, p, b, nullptr, s_param));
    best = std::min(best, r.cycles);
  }
  const auto def = testing::verify_ok(
      collectives::make_reduce_1d(ReduceAlgo::TwoPhase, p, b));
  EXPECT_LE(static_cast<double>(def.cycles), 1.15 * static_cast<double>(best));
}

}  // namespace
}  // namespace wsr
