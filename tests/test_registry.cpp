// Tests of the AlgorithmRegistry: introspection invariants, the determinism
// of best_candidate tie-breaking, schedule construction through descriptors,
// and — the load-bearing one — parity of the registry-driven planner against
// the pre-refactor hand-rolled selection tables.
#include "registry/algorithm_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "collectives/midroot.hpp"
#include "model/costs1d.hpp"
#include "model/costs2d.hpp"
#include "runtime/planner.hpp"
#include "sim_test_utils.hpp"

namespace wsr {
namespace {

using registry::AlgorithmDescriptor;
using registry::AlgorithmRegistry;
using registry::Collective;
using registry::Dims;

std::vector<std::string> names(const std::vector<const AlgorithmDescriptor*>& ds) {
  std::vector<std::string> out;
  for (const auto* d : ds) out.push_back(d->name);
  return out;
}

TEST(Registry, FamiliesAreCompleteAndNameSorted) {
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  EXPECT_EQ(names(reg.query(Collective::Reduce, Dims::OneD)),
            (std::vector<std::string>{"AutoGen", "Chain", "Star", "Tree",
                                      "TwoPhase"}));
  EXPECT_EQ(names(reg.query(Collective::AllReduce, Dims::OneD)),
            (std::vector<std::string>{"AutoGen+Bcast", "Butterfly",
                                      "Chain+Bcast", "MidRoot", "Ring",
                                      "Star+Bcast", "Tree+Bcast",
                                      "TwoPhase+Bcast"}));
  EXPECT_EQ(names(reg.query(Collective::Broadcast, Dims::OneD)),
            (std::vector<std::string>{"Flood"}));
  EXPECT_EQ(names(reg.query(Collective::AllGather, Dims::OneD)),
            (std::vector<std::string>{"Flood"}));
  EXPECT_EQ(names(reg.query(Collective::AllGather, Dims::TwoD)),
            (std::vector<std::string>{"X-Y Flood"}));
  EXPECT_EQ(names(reg.query(Collective::ReduceScatter, Dims::OneD)),
            (std::vector<std::string>{"Halving", "Pipeline"}));
  EXPECT_TRUE(reg.query(Collective::ReduceScatter, Dims::TwoD).empty());
  EXPECT_EQ(names(reg.query(Collective::Reduce, Dims::TwoD)),
            (std::vector<std::string>{"Snake", "X-Y AutoGen", "X-Y Chain",
                                      "X-Y Mixed", "X-Y Star", "X-Y Tree",
                                      "X-Y TwoPhase"}));
  EXPECT_EQ(names(reg.query(Collective::AllReduce, Dims::TwoD)),
            (std::vector<std::string>{"Snake+Bcast", "X-Y AutoGen", "X-Y Chain",
                                      "X-Y Ring", "X-Y Star", "X-Y Tree",
                                      "X-Y TwoPhase"}));
  EXPECT_EQ(names(reg.query(Collective::Broadcast, Dims::TwoD)),
            (std::vector<std::string>{"Flood-2D"}));
}

TEST(Registry, ExtensionsAreNotAutoSelectable) {
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  const auto selectable =
      names(reg.query(Collective::AllReduce, Dims::OneD, true));
  EXPECT_EQ(std::count(selectable.begin(), selectable.end(), "MidRoot"), 0);
  EXPECT_EQ(std::count(selectable.begin(), selectable.end(), "Butterfly"), 0);
  EXPECT_EQ(std::count(selectable.begin(), selectable.end(), "Ring"), 1);
  EXPECT_EQ(names(reg.query(Collective::Reduce, Dims::TwoD, true)),
            (std::vector<std::string>{"Snake", "X-Y AutoGen", "X-Y Chain",
                                      "X-Y Star", "X-Y Tree", "X-Y TwoPhase"}));
}

TEST(Registry, DescriptorsAreWellFormed) {
  for (const AlgorithmDescriptor* d : AlgorithmRegistry::instance().all()) {
    EXPECT_FALSE(d->name.empty());
    EXPECT_TRUE(d->applicable && d->cost && d->build) << d->name;
    EXPECT_GE(d->color_budget, 1u) << d->name;
    EXPECT_LE(d->color_budget, 24u) << d->name;  // the hardware's budget
    EXPECT_EQ(AlgorithmRegistry::instance().find(d->collective, d->dims, d->name),
              d);
  }
  EXPECT_EQ(AlgorithmRegistry::instance().find(Collective::Reduce, Dims::OneD,
                                               "NoSuchAlgorithm"),
            nullptr);
}

TEST(Registry, EveryApplicableDescriptorBuildsACorrectSchedule) {
  // The all-in-one structural check: every registered algorithm, built
  // through its descriptor on a small shape, must produce a schedule whose
  // simulated results are exact. Color budgets must hold too.
  const registry::PlanContext ctx = registry::make_context(16);
  for (const AlgorithmDescriptor* d : AlgorithmRegistry::instance().all()) {
    const GridShape grid = d->dims == Dims::OneD ? GridShape{8, 1}
                                                 : GridShape{4, 4};
    const u32 vec_len = 16;  // divisible by 8 and 4 => Ring variants apply
    ASSERT_TRUE(d->applicable(grid, vec_len)) << d->name;
    const wse::Schedule s = d->build(grid, vec_len, ctx);
    EXPECT_LE(s.colors_used(), d->color_budget) << d->name;
    testing::verify_ok(s, runtime::semantic_for(d->collective));
  }
}

TEST(Registry, IrregularShapeApplicability) {
  // The widened hardware axis: non-power-of-two rows and degenerate columns
  // must be first-class for the families that support them, and the
  // power-of-two constructions must cleanly refuse them.
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  const auto* flood = reg.find(Collective::AllGather, Dims::OneD, "Flood");
  const auto* xy_flood = reg.find(Collective::AllGather, Dims::TwoD, "X-Y Flood");
  const auto* pipeline = reg.find(Collective::ReduceScatter, Dims::OneD,
                                  "Pipeline");
  const auto* halving = reg.find(Collective::ReduceScatter, Dims::OneD,
                                 "Halving");
  const auto* butterfly = reg.find(Collective::AllReduce, Dims::OneD,
                                   "Butterfly");
  ASSERT_TRUE(flood && xy_flood && pipeline && halving && butterfly);

  for (u32 p : {2u, 3u, 7u, 12u, 127u}) {
    EXPECT_TRUE(flood->applicable({p, 1}, 5)) << p;
    EXPECT_TRUE(pipeline->applicable({p, 1}, 2 * p)) << p;
    EXPECT_FALSE(pipeline->applicable({p, 1}, 2 * p + 1)) << p;
  }
  // Degenerate 1xH columns and rectangular grids: only X-Y Flood serves them
  // (the X-Y reductions need both axes >= 2).
  EXPECT_TRUE(xy_flood->applicable({1, 4}, 5));
  EXPECT_TRUE(xy_flood->applicable({5, 3}, 5));
  EXPECT_FALSE(reg.at(Collective::AllReduce, Dims::TwoD, "X-Y Chain")
                   .applicable({1, 4}, 5));

  // The butterfly constructions: power-of-two rows up to 64, divisible B.
  for (u32 p : {2u, 4u, 32u, 64u}) {
    EXPECT_TRUE(halving->applicable({p, 1}, 2 * p)) << p;
    EXPECT_TRUE(butterfly->applicable({p, 1}, 2 * p)) << p;
  }
  for (u32 p : {3u, 6u, 12u, 128u}) {
    EXPECT_FALSE(halving->applicable({p, 1}, 2 * p)) << p;
    EXPECT_FALSE(butterfly->applicable({p, 1}, 2 * p)) << p;
  }
  EXPECT_FALSE(butterfly->applicable({8, 1}, 12));  // 12 % 8 != 0
}

TEST(Registry, SelectionOnIrregularShapesIsDeterministic) {
  // Planning twice on prime / rectangular shapes must pick the same
  // algorithm with the same prediction (the name tie-break is total).
  const runtime::Planner planner(16);
  const runtime::PlanRequest reqs[] = {
      {Collective::AllGather, {7, 1}, 21, ""},
      {Collective::AllGather, {1, 5}, 8, ""},
      {Collective::AllGather, {5, 3}, 8, ""},
      {Collective::ReduceScatter, {6, 1}, 12, ""},
      {Collective::ReduceScatter, {8, 1}, 16, ""},
      {Collective::Reduce, {13, 1}, 64, ""},
  };
  for (const runtime::PlanRequest& req : reqs) {
    const runtime::Plan a = planner.plan(req);
    const runtime::Plan b = planner.plan(req);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.prediction.cycles, b.prediction.cycles);
    testing::verify_ok(a.schedule, runtime::semantic_for(req.collective));
  }
  // On a power-of-two row both ReduceScatter descriptors apply; the winner
  // must be the cheaper prediction, not registration order.
  const runtime::Plan rs = planner.plan({Collective::ReduceScatter, {8, 1},
                                         16, ""});
  const registry::PlanContext ctx = registry::make_context(8);
  const i64 halving = AlgorithmRegistry::instance()
                          .at(Collective::ReduceScatter, Dims::OneD, "Halving")
                          .cost({8, 1}, 16, ctx)
                          .cycles;
  const i64 pipeline = AlgorithmRegistry::instance()
                           .at(Collective::ReduceScatter, Dims::OneD,
                               "Pipeline")
                           .cost({8, 1}, 16, ctx)
                           .cycles;
  EXPECT_EQ(rs.prediction.cycles, std::min(halving, pipeline));
}

TEST(Registry, RingApplicabilityRequiresDivisibility) {
  const auto* ring = AlgorithmRegistry::instance().find(Collective::AllReduce,
                                                        Dims::OneD, "Ring");
  ASSERT_NE(ring, nullptr);
  EXPECT_TRUE(ring->applicable({8, 1}, 64));
  EXPECT_FALSE(ring->applicable({8, 1}, 63));
}

// --- deterministic tie-breaking ---------------------------------------------

Candidate make_candidate(std::string label, i64 cycles) {
  return {std::move(label), Prediction(CostTerms{}, cycles)};
}

TEST(BestCandidate, PicksFewestCycles) {
  const std::vector<Candidate> c = {make_candidate("A", 20),
                                    make_candidate("B", 10),
                                    make_candidate("C", 30)};
  EXPECT_EQ(best_candidate(c), 1u);
}

TEST(BestCandidate, BreaksTiesByLabelNotInsertionOrder) {
  // Two pairs tie; within the winning cycle count the lexicographically
  // smallest label must win regardless of vector order.
  const std::vector<Candidate> c = {make_candidate("Zeta", 5),
                                    make_candidate("Beta", 7),
                                    make_candidate("Alpha", 5)};
  EXPECT_EQ(best_candidate(c), 2u);
  const std::vector<Candidate> reversed = {make_candidate("Alpha", 5),
                                           make_candidate("Beta", 7),
                                           make_candidate("Zeta", 5)};
  EXPECT_EQ(best_candidate(reversed), 0u);
}

// --- parity with the pre-refactor selection tables --------------------------
//
// The reference implementations below are verbatim transcriptions of the
// selection loops that lived in runtime/planner.cpp before the registry
// refactor (hand-rolled enumeration over kFixedReduceAlgos + Auto-Gen +
// special-cased Ring/Snake). The registry-driven planner must pick plans
// with identical predicted cycles; when the reference minimizer is unique it
// must also pick the identical algorithm.

struct OldChoice {
  std::string algorithm;
  i64 cycles = 0;
  bool unique = true;  ///< no other candidate ties the winning cycle count
};

void note_tie(OldChoice& c, i64 candidate_cycles) {
  if (candidate_cycles == c.cycles) c.unique = false;
}

OldChoice old_plan_reduce_1d(const runtime::Planner& p, u32 P, u32 B) {
  const MachineParams& mp = p.machine();
  OldChoice c{"AutoGen", p.autogen_model().predict(P, B).cycles};
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const i64 cyc = predict_reduce_1d(a, P, B, mp).cycles;
    note_tie(c, cyc);
    if (cyc < c.cycles) c = {wsr::name(a), cyc};
  }
  return c;
}

OldChoice old_plan_allreduce_1d(const runtime::Planner& p, u32 P, u32 B) {
  const MachineParams& mp = p.machine();
  const auto rb = [&](ReduceAlgo a) {
    const Prediction r = a == ReduceAlgo::AutoGen
                             ? p.autogen_model().predict(P, B)
                             : predict_reduce_1d(a, P, B, mp);
    return sequential(r, predict_broadcast_1d(P, B, mp)).cycles;
  };
  OldChoice c{"AutoGen+Bcast", rb(ReduceAlgo::AutoGen)};
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const i64 cyc = rb(a);
    note_tie(c, cyc);
    if (cyc < c.cycles) c = {std::string(wsr::name(a)) + "+Bcast", cyc};
  }
  if (B % P == 0) {
    const i64 ring = predict_ring_allreduce(P, B, mp).cycles;
    note_tie(c, ring);
    if (ring < c.cycles) c = {"Ring", ring};
  }
  return c;
}

OldChoice old_plan_reduce_2d(const runtime::Planner& p, GridShape g, u32 B) {
  const MachineParams& mp = p.machine();
  const auto r1 = [&](ReduceAlgo a, u32 n) {
    return a == ReduceAlgo::AutoGen ? p.autogen_model().predict(n, B)
                                    : predict_reduce_1d(a, n, B, mp);
  };
  OldChoice c{"Snake", predict_snake_reduce(g, B, mp).cycles};
  for (ReduceAlgo a : kAllReduceAlgosBase) {
    const i64 cyc = sequential(r1(a, g.width), r1(a, g.height)).cycles;
    note_tie(c, cyc);
    if (cyc < c.cycles) c = {std::string("X-Y ") + wsr::name(a), cyc};
  }
  return c;
}

OldChoice old_plan_allreduce_2d(const runtime::Planner& p, GridShape g, u32 B) {
  const MachineParams& mp = p.machine();
  const auto arb1 = [&](ReduceAlgo a, u32 n) {
    const Prediction r = a == ReduceAlgo::AutoGen
                             ? p.autogen_model().predict(n, B)
                             : predict_reduce_1d(a, n, B, mp);
    return sequential(r, predict_broadcast_1d(n, B, mp));
  };
  OldChoice c{"X-Y AutoGen",
              sequential(arb1(ReduceAlgo::AutoGen, g.width),
                         arb1(ReduceAlgo::AutoGen, g.height))
                  .cycles};
  for (ReduceAlgo a : kFixedReduceAlgos) {
    const i64 cyc =
        sequential(arb1(a, g.width), arb1(a, g.height)).cycles;
    note_tie(c, cyc);
    if (cyc < c.cycles) c = {std::string("X-Y ") + wsr::name(a), cyc};
  }
  const i64 snake = sequential(predict_snake_reduce(g, B, mp),
                               predict_broadcast_2d(g, B, mp))
                        .cycles;
  note_tie(c, snake);
  if (snake < c.cycles) c = {"Snake+Bcast", snake};
  return c;
}

void expect_parity(const runtime::Plan& plan, const OldChoice& old,
                   const std::string& what) {
  EXPECT_EQ(plan.prediction.cycles, old.cycles) << what;
  if (old.unique) EXPECT_EQ(plan.algorithm, old.algorithm) << what;
}

class RegistryParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { planner_ = new runtime::Planner(128); }
  static void TearDownTestSuite() {
    delete planner_;
    planner_ = nullptr;
  }
  static runtime::Planner* planner_;
};
runtime::Planner* RegistryParity::planner_ = nullptr;

TEST_F(RegistryParity, Plan1DMatchesPreRefactorSelection) {
  for (u32 p : {2u, 3u, 4u, 8u, 16u, 31u, 64u, 128u}) {
    for (u32 b : {1u, 4u, 16u, 100u, 256u, 1024u, 4096u, 32768u}) {
      const std::string what =
          "P=" + std::to_string(p) + " B=" + std::to_string(b);
      expect_parity(planner_->plan_reduce_1d(p, b),
                    old_plan_reduce_1d(*planner_, p, b), "reduce " + what);
      expect_parity(planner_->plan_allreduce_1d(p, b),
                    old_plan_allreduce_1d(*planner_, p, b),
                    "allreduce " + what);
    }
  }
}

TEST_F(RegistryParity, Plan2DMatchesPreRefactorSelection) {
  for (GridShape g : {GridShape{4, 4}, GridShape{8, 8}, GridShape{8, 32},
                      GridShape{32, 8}, GridShape{64, 64}, GridShape{128, 16}}) {
    for (u32 b : {1u, 64u, 1024u, 16384u}) {
      const std::string what = std::to_string(g.width) + "x" +
                               std::to_string(g.height) + " B=" +
                               std::to_string(b);
      expect_parity(planner_->plan_reduce_2d(g, b),
                    old_plan_reduce_2d(*planner_, g, b), "reduce2d " + what);
      expect_parity(planner_->plan_allreduce_2d(g, b),
                    old_plan_allreduce_2d(*planner_, g, b),
                    "allreduce2d " + what);
    }
  }
}

TEST_F(RegistryParity, SelectorTablesMatchDirectPredictions) {
  // The selector's registry-backed candidate tables must reproduce the
  // hand-rolled fixed-candidate enumerations they replaced.
  const MachineParams mp = planner_->machine();
  for (u32 p : {4u, 16u, 64u}) {
    for (u32 b : {1u, 256u, 8192u}) {
      std::map<std::string, i64> expected;
      for (ReduceAlgo a : kFixedReduceAlgos) {
        expected[wsr::name(a)] = predict_reduce_1d(a, p, b, mp).cycles;
      }
      const auto got = reduce_1d_candidates(p, b, mp);
      ASSERT_EQ(got.size(), expected.size());
      for (const Candidate& c : got) {
        ASSERT_TRUE(expected.count(c.label)) << c.label;
        EXPECT_EQ(c.prediction.cycles, expected[c.label]) << c.label;
      }

      std::map<std::string, i64> expected_ar;
      for (ReduceAlgo a : kFixedReduceAlgos) {
        expected_ar[std::string(wsr::name(a)) + "+Bcast"] =
            predict_reduce_then_broadcast(a, p, b, mp).cycles;
      }
      expected_ar["Ring"] = predict_ring_allreduce(p, b, mp).cycles;
      const auto got_ar = allreduce_1d_candidates(p, b, mp);
      ASSERT_EQ(got_ar.size(), expected_ar.size());
      for (const Candidate& c : got_ar) {
        ASSERT_TRUE(expected_ar.count(c.label)) << c.label;
        EXPECT_EQ(c.prediction.cycles, expected_ar[c.label]) << c.label;
      }
    }
  }
}

TEST_F(RegistryParity, MixedAxisPlanStillReportsPerAxisPair) {
  const runtime::Plan mixed = planner_->plan_reduce_2d_mixed({128, 8}, 512);
  // Label format "X-Y <x>/<y>" is part of the descriptor's display contract.
  EXPECT_EQ(mixed.algorithm.rfind("X-Y ", 0), 0u) << mixed.algorithm;
  EXPECT_NE(mixed.algorithm.find('/'), std::string::npos) << mixed.algorithm;
}

}  // namespace
}  // namespace wsr
