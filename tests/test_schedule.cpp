// Tests of the Schedule IR and its static validation.
#include "wse/schedule.hpp"

#include <gtest/gtest.h>

#include "collectives/collectives.hpp"
#include "wse/checks.hpp"

namespace wsr::wse {
namespace {

TEST(Schedule, OpConstructors) {
  const Op s = Op::send(3, 128, 16);
  EXPECT_EQ(s.kind, OpKind::Send);
  EXPECT_EQ(s.out_color, 3);
  EXPECT_EQ(s.len, 128u);
  EXPECT_EQ(s.src_offset, 16u);

  const Op r = Op::recv(1, 64, RecvMode::AddModulo, 0, 8);
  EXPECT_EQ(r.kind, OpKind::Recv);
  EXPECT_EQ(r.mode, RecvMode::AddModulo);
  EXPECT_EQ(r.modulo, 8u);

  Op f = Op::recv_reduce_send(0, 1, 32);
  f.after({2, 5});
  EXPECT_EQ(f.kind, OpKind::RecvReduceSend);
  EXPECT_EQ(f.deps, (std::vector<u32>{2, 5}));
}

TEST(Schedule, ColorsUsed) {
  Schedule s({4, 1}, 8, "t");
  s.program(0).add(Op::recv(2, 8, RecvMode::Add));
  s.add_rule(0u, {2, Dir::East, dir_bit(Dir::Ramp), 8});
  s.program(3).add(Op::send(2, 8));
  s.add_rule(3u, {2, Dir::Ramp, dir_bit(Dir::West), 8});
  EXPECT_EQ(s.colors_used(), 1u);
}

TEST(Checks, AcceptsGeneratedSchedules) {
  EXPECT_TRUE(validate(collectives::make_reduce_1d(ReduceAlgo::Chain, 8, 16)).empty());
  EXPECT_TRUE(validate(collectives::make_broadcast_1d(8, 16)).empty());
}

TEST(Checks, CountMismatchDetected) {
  Schedule s({2, 1}, 4, "bad-count");
  s.program(1).add(Op::send(0, 4));
  s.add_rule(1u, {0, Dir::Ramp, dir_bit(Dir::West), 3});  // 3 != 4
  s.program(0).add(Op::recv(0, 4, RecvMode::Add));
  s.add_rule(0u, {0, Dir::East, dir_bit(Dir::Ramp), 4});
  const auto problems = validate(s);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("rules accept 3"), std::string::npos);
}

TEST(Checks, OffGridRuleDetected) {
  Schedule s({2, 1}, 4, "bad-dir");
  s.program(1).add(Op::send(0, 4));
  s.add_rule(1u, {0, Dir::Ramp, dir_bit(Dir::East), 4});  // PE 1 has no east
  const auto problems = validate(s);
  EXPECT_FALSE(problems.empty());
}

TEST(Checks, DependencyCycleDetected) {
  Schedule s({2, 1}, 4, "dep-cycle");
  Op a = Op::send(0, 4);
  a.after(1u);
  Op b = Op::send(0, 4);
  b.after(0u);
  s.program(1).add(std::move(a));
  s.program(1).add(std::move(b));
  s.add_rule(1u, {0, Dir::Ramp, dir_bit(Dir::West), 8});
  s.program(0).add(Op::recv(0, 8, RecvMode::AddModulo, 0, 4));
  s.add_rule(0u, {0, Dir::East, dir_bit(Dir::Ramp), 8});
  const auto problems = validate(s);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("cycle"), std::string::npos);
}

TEST(Checks, StrayRampTrafficDetected) {
  Schedule s({2, 1}, 4, "stray");
  s.program(1).add(Op::send(0, 4));
  s.add_rule(1u, {0, Dir::Ramp, dir_bit(Dir::West), 4});
  // PE 0 forwards to its ramp but has no receive op.
  s.add_rule(0u, {0, Dir::East, dir_bit(Dir::Ramp), 4});
  EXPECT_FALSE(validate(s).empty());
}

TEST(Schedule, DumpIsHumanReadable) {
  const Schedule s = collectives::make_reduce_1d(ReduceAlgo::Chain, 4, 8);
  const std::string d = s.dump();
  EXPECT_NE(d.find("recv_reduce_send"), std::string::npos);
  EXPECT_NE(d.find("route c"), std::string::npos);
  EXPECT_NE(d.find("PE(0,0)"), std::string::npos);
}

TEST(Schedule, ColorBudgetRespected) {
  // Paper Section 8.2: implementations must stay well under 24 colors.
  EXPECT_LE(collectives::make_reduce_1d(ReduceAlgo::TwoPhase, 32, 8).colors_used(), 4u);
  EXPECT_LE(collectives::make_allreduce_1d(ReduceAlgo::Chain, 32, 8).colors_used(), 5u);
  EXPECT_LE(collectives::make_ring_allreduce_1d(8, 16, collectives::RingMapping::Simple)
                .colors_used(),
            6u);
  EXPECT_LE(collectives::make_allreduce_2d_xy(ReduceAlgo::TwoPhase, {8, 8}, 8)
                .colors_used(),
            10u);
}

}  // namespace
}  // namespace wsr::wse
