// Tests of the serving layer's building blocks: the lock-free latency
// histogram's bucketing math, the wire-protocol request parser, and the
// epoll event loop's wake/post/tick machinery. The end-to-end daemon
// behavior (timeouts, shedding, drain) is covered by tools/wsrd_chaos.py.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "serving/event_loop.hpp"
#include "serving/histogram.hpp"
#include "serving/request.hpp"

namespace wsr::serving {
namespace {

// --- LatencyHistogram -------------------------------------------------------

TEST(LatencyHistogram, ExactBelowLinearRange) {
  for (u64 us = 0; us < LatencyHistogram::kLinear; ++us) {
    EXPECT_EQ(LatencyHistogram::bucket_of(us), us);
    EXPECT_EQ(LatencyHistogram::bucket_floor(static_cast<u32>(us)), us);
  }
}

TEST(LatencyHistogram, BucketOfIsMonotoneAndFloorInverts) {
  u32 prev = 0;
  for (u64 us = 0; us < (1u << 22); us += 13) {
    const u32 b = LatencyHistogram::bucket_of(us);
    EXPECT_GE(b, prev) << "us=" << us;
    prev = b > prev ? b : prev;
    EXPECT_LE(LatencyHistogram::bucket_floor(b), us);
    EXPECT_GT(LatencyHistogram::bucket_ceil(b), us);
  }
  // Every bucket's floor maps back to that bucket, across the whole range.
  for (u32 b = 0; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_floor(b)),
              b);
  }
  EXPECT_EQ(LatencyHistogram::bucket_of(~u64{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, QuantizationErrorIsBounded) {
  // 8 sub-buckets per octave: a bucket spans at most 1/8 of its floor, so
  // the midpoint answer is within ~6.25% of any value in the bucket.
  for (u64 us = LatencyHistogram::kLinear; us < (1u << 24); us = us * 9 / 8 + 1) {
    const u32 b = LatencyHistogram::bucket_of(us);
    const u64 lo = LatencyHistogram::bucket_floor(b);
    const u64 hi = LatencyHistogram::bucket_ceil(b);
    EXPECT_LE(hi - lo, lo / (LatencyHistogram::kSub - 1))
        << "bucket " << b << " too wide at us=" << us;
  }
}

TEST(LatencyHistogram, PercentilesAndMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  // 100 values: 1..100 us (exact buckets up to 15, coarse above).
  for (u64 v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_us(), 100u);
  const u64 p50 = h.percentile(0.50);
  EXPECT_GE(p50, 40u);
  EXPECT_LE(p50, 60u);
  const u64 p99 = h.percentile(0.99);
  EXPECT_GE(p99, 90u);
  EXPECT_LE(p99, 110u);
  EXPECT_GE(h.percentile(1.0), p99);
  EXPECT_LE(h.percentile(0.0), h.percentile(0.5));
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPer = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPer; ++i)
        h.record(static_cast<u64>(t * 1000 + i % 997));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads) * kPer);
}

// --- parse_request ----------------------------------------------------------

TEST(ParseRequest, AcceptsAWellFormedPlanLine) {
  const Request r = parse_request(
      R"({"id":"abc","collective":"reduce","grid":"8x4","bytes":512})");
  EXPECT_TRUE(r.is_plan());
  EXPECT_EQ(r.error, "");
  EXPECT_EQ(r.id_json, "\"abc\"");
  EXPECT_EQ(r.req.grid.width, 8u);
  EXPECT_EQ(r.req.grid.height, 4u);
  EXPECT_EQ(r.req.vec_len, 128u);  // bytes / 4
  EXPECT_GT(r.t_enqueue_us, 0);
}

TEST(ParseRequest, EchoesNumericIds) {
  const Request r = parse_request(
      R"({"id":7,"collective":"reduce","grid":"32","bytes":256})");
  EXPECT_EQ(r.id_json, "7");
  const Request bad = parse_request(
      R"({"id":[1],"collective":"reduce","grid":"32","bytes":256})");
  EXPECT_NE(bad.error, "");
}

TEST(ParseRequest, StatsVerb) {
  const Request r = parse_request(R"({"verb":"stats","id":"s"})");
  EXPECT_TRUE(r.stats);
  EXPECT_FALSE(r.is_plan());
  EXPECT_EQ(r.id_json, "\"s\"");
  const Request bad = parse_request(R"({"verb":"frobnicate"})");
  EXPECT_NE(bad.error.find("unknown verb"), std::string::npos);
}

TEST(ParseRequest, RejectsMalformedLinesInBand) {
  EXPECT_NE(parse_request("not json at all").error, "");
  EXPECT_NE(parse_request("[1,2,3]").error, "");  // not an object
  EXPECT_NE(parse_request(R"({"collective":"sort","grid":"4","bytes":4})")
                .error, "");
  EXPECT_NE(parse_request(R"({"collective":"reduce","bytes":4})").error, "");
  EXPECT_NE(parse_request(R"({"collective":"reduce","grid":"0","bytes":4})")
                .error, "");
  // bytes and vec_len are mutually exclusive, and bytes must be 4-aligned.
  EXPECT_NE(
      parse_request(
          R"({"collective":"reduce","grid":"32","bytes":8,"vec_len":2})")
          .error, "");
  EXPECT_NE(parse_request(R"({"collective":"reduce","grid":"32"})").error, "");
  EXPECT_NE(parse_request(R"({"collective":"reduce","grid":"32","bytes":6})")
                .error, "");
  EXPECT_NE(
      parse_request(
          R"({"collective":"reduce","grid":"32","bytes":4,"algorithm":"X"})")
          .error, "");
}

TEST(ParseRequest, ErrorResponseShape) {
  EXPECT_EQ(error_response("overloaded"), "{\"error\":\"overloaded\"}\n");
  EXPECT_EQ(error_response("too_large", "\"id9\""),
            "{\"id\":\"id9\",\"error\":\"too_large\"}\n");
}

TEST(ParseRequest, JsonEscapeControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nfeed\ttab"), "line\\nfeed\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

// --- EventLoop --------------------------------------------------------------

TEST(EventLoop, DispatchesReadinessPostAndTick) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  int reads = 0;
  const u64 id = loop.add(fds[0], EPOLLIN, [&](u32) {
    char buf[8];
    ASSERT_GT(::read(fds[0], buf, sizeof buf), 0);
    if (++reads == 2) loop.stop();
  });
  EXPECT_GT(id, 0u);

  bool posted = false;
  loop.post([&] { posted = true; });

  int ticks = 0;
  loop.set_tick(1, [&] { ++ticks; });

  // Readiness arrives from another thread mid-run; post() must wake the
  // loop even with no fd activity.
  std::thread writer([&] {
    ::usleep(20'000);
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    ::usleep(20'000);
    ASSERT_EQ(::write(fds[1], "y", 1), 1);
  });
  loop.run();
  writer.join();

  EXPECT_EQ(reads, 2);
  EXPECT_TRUE(posted);
  EXPECT_GT(ticks, 0);

  loop.remove(id);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, RemovedSourceStopsDelivering) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<int> fired{0};
  const u64 id = loop.add(fds[0], EPOLLIN, [&](u32) { ++fired; });
  loop.remove(id);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  // With the only source removed, the loop must idle until stopped.
  loop.post([&] { loop.stop(); });
  loop.run();
  EXPECT_EQ(fired.load(), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace wsr::serving
