// Sweep-engine determinism: a figure sweep evaluated on the SweepRunner must
// produce identical Series values at any thread count (each cell writes only
// its own pre-allocated slot; scheduling is dynamic but the outputs are
// pure). This is the contract that lets every fig bench accept --jobs while
// keeping its numeric output byte-identical.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "harness.hpp"

namespace wsr {
namespace {

/// A miniature fig12b-style sweep: (algorithm, P) cells, each building a
/// schedule and simulating it on FabricSim.
std::vector<bench::Series> run_sweep(u32 jobs) {
  const MachineParams mp;
  const u32 B = 32;
  const std::vector<u32> pes = {2, 4, 8, 16, 24};
  const ReduceAlgo algos[] = {ReduceAlgo::Star, ReduceAlgo::Chain,
                              ReduceAlgo::Tree, ReduceAlgo::TwoPhase};

  bench::SweepRunner runner(jobs);
  std::vector<bench::Series> series;
  for (ReduceAlgo a : algos) {
    series.push_back(
        {std::string(name(a)), std::vector<bench::Measurement>(pes.size())});
  }
  const runtime::Planner planner(32, mp);
  for (std::size_t ai = 0; ai < std::size(algos); ++ai) {
    const ReduceAlgo a = algos[ai];
    for (std::size_t i = 0; i < pes.size(); ++i) {
      const u32 p = pes[i];
      runner.cell(&series[ai].points[i], [=, &planner] {
        const i64 pred = planner.predict_reduce_1d(a, p, B).cycles;
        return bench::Measurement{
            bench::measured_cycles(collectives::make_reduce_1d(a, p, B), pred),
            pred};
      });
    }
  }
  runner.run();
  return series;
}

TEST(SweepDeterminism, SeriesIdenticalAtAnyThreadCount) {
  const auto reference = run_sweep(1);
  for (u32 jobs : {2u, 4u, 8u}) {
    const auto parallel = run_sweep(jobs);
    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t s = 0; s < reference.size(); ++s) {
      EXPECT_EQ(parallel[s].label, reference[s].label);
      ASSERT_EQ(parallel[s].points.size(), reference[s].points.size());
      for (std::size_t i = 0; i < reference[s].points.size(); ++i) {
        EXPECT_EQ(parallel[s].points[i].measured,
                  reference[s].points[i].measured)
            << reference[s].label << " point " << i << " at jobs=" << jobs;
        EXPECT_EQ(parallel[s].points[i].predicted,
                  reference[s].points[i].predicted)
            << reference[s].label << " point " << i << " at jobs=" << jobs;
      }
    }
  }
}

TEST(SweepDeterminism, ParallelForCoversEveryIndexExactlyOnce) {
  for (u32 jobs : {0u, 1u, 3u, 16u}) {
    std::vector<int> hits(1000, 0);
    parallel_for_index(hits.size(), jobs,
                       [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at jobs=" << jobs;
    }
  }
}

TEST(SweepDeterminism, BenchOptionsParsing) {
  {
    char prog[] = "bench", j[] = "--jobs", four[] = "4", js[] = "--json",
         path[] = "/tmp/out.json";
    char* argv[] = {prog, j, four, js, path};
    const auto opt = bench::BenchOptions::parse(5, argv);
    EXPECT_EQ(opt.jobs, 4u);
    EXPECT_EQ(opt.json_path, "/tmp/out.json");
  }
  {
    char prog[] = "bench";
    char* argv[] = {prog};
    const auto opt = bench::BenchOptions::parse(1, argv);
    // Default from WSR_BENCH_JOBS if set, else 1; this test environment
    // does not set it.
    EXPECT_EQ(opt.json_path, "");
  }
}

TEST(SweepDeterminism, MeasurementErrExcludesUnsimulated) {
  // Unsimulated points must not pull the mean toward zero.
  std::vector<bench::Measurement> points = {{100, 110}, {-1, 12345}, {0, 7}};
  EXPECT_FALSE(points[1].simulated());
  EXPECT_FALSE(points[2].simulated());
  const auto err = bench::mean_err(points);
  ASSERT_TRUE(err.has_value());
  EXPECT_DOUBLE_EQ(*err, 0.1);

  // Prediction-only series: no mean at all instead of a fake 0%.
  EXPECT_FALSE(bench::mean_err({{-1, 10}, {-1, 20}}).has_value());
}

}  // namespace
}  // namespace wsr
