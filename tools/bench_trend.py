#!/usr/bin/env python3
"""Compare bench --json reports across PRs and fail on wall-time regressions.

CI runs the heaviest figure sweep with ``--json`` each PR and archives the
report as ``BENCH_PR<k>.json``. This script compares the current report(s)
against the previous PR's artifact and exits non-zero when any figure
binary's wall time regressed by more than ``--max-ratio`` (default 1.3x).

Simulated cycle counts are also diffed: the simulators are deterministic,
so measured values should only change when simulator semantics change; a
drift is reported as a warning (it is a correctness question for review,
not a perf gate).

Usage:
  bench_trend.py CURRENT.json [CURRENT2.json ...] --baseline PREV.json [...]
                 [--max-ratio 1.3]

Reports are matched by their top-level "bench" name. Current reports with
no baseline counterpart pass with a note (first run / new figure).
"""

import argparse
import json
import sys


def load_reports(paths):
    reports = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        name = data.get("bench", path)
        reports[name] = (path, data)
    return reports


def diff_measured(name, cur, base):
    """Warn when a figure's measured (simulated) values drifted."""
    warnings = []
    base_figs = {f["title"]: f for f in base.get("figures", [])}
    for fig in cur.get("figures", []):
        bfig = base_figs.get(fig["title"])
        if bfig is None:
            continue
        base_series = {s["label"]: s for s in bfig.get("series", [])}
        for series in fig.get("series", []):
            bs = base_series.get(series["label"])
            if bs is None:
                continue
            if series.get("measured") != bs.get("measured"):
                warnings.append(
                    f"  [{name}] figure '{fig['title']}' series "
                    f"'{series['label']}': measured cycles drifted from the "
                    "baseline (simulator semantics changed?)"
                )
    return warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="+", help="current --json report(s)")
    ap.add_argument("--baseline", nargs="*", default=[],
                    help="previous PR's report(s); empty = first run, pass")
    ap.add_argument("--max-ratio", type=float, default=1.3,
                    help="fail when wall_seconds regresses beyond this "
                         "factor (default: 1.3)")
    args = ap.parse_args()

    current = load_reports(args.current)
    baseline = load_reports(args.baseline)

    failures = []
    warnings = []
    for name, (path, cur) in sorted(current.items()):
        if name not in baseline:
            print(f"[bench-trend] {name}: no baseline ({path}); "
                  "recording as the new reference")
            continue
        _, base = baseline[name]
        # wall_seconds means different things under different configs: full
        # wall clock vs minimum sweep time (--repeat), and --jobs changes
        # the parallelism. Comparing across configs would gate on noise.
        for knob in ("jobs", "repeat"):
            if cur.get(knob) != base.get(knob):
                print(f"[bench-trend] {name}: {knob} changed "
                      f"({base.get(knob)} -> {cur.get(knob)}); skipping the "
                      "wall-time comparison and resetting the baseline")
                break
        else:
            knob = None
        if knob is not None:
            continue
        cur_wall = float(cur.get("wall_seconds", 0.0))
        base_wall = float(base.get("wall_seconds", 0.0))
        if base_wall <= 0.0:
            print(f"[bench-trend] {name}: baseline has no wall time; skipped")
            continue
        ratio = cur_wall / base_wall
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSED"
        print(f"[bench-trend] {name}: {base_wall:.2f}s -> {cur_wall:.2f}s "
              f"({ratio:.2f}x, limit {args.max_ratio:.2f}x) {verdict}")
        if ratio > args.max_ratio:
            failures.append(
                f"  [{name}] wall time regressed {ratio:.2f}x "
                f"({base_wall:.2f}s -> {cur_wall:.2f}s)"
            )
        warnings.extend(diff_measured(name, cur, base))

    for w in warnings:
        print(f"[bench-trend] WARNING:\n{w}")
    if failures:
        print("[bench-trend] FAIL: wall-time regression beyond the limit:")
        for f in failures:
            print(f)
        return 1
    print("[bench-trend] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
