#!/usr/bin/env python3
"""Markdown link checker for the docs CI job (stdlib only).

Usage: check_links.py FILE.md [FILE.md ...]

Checks every inline markdown link and image (``[text](target)``) in the
given files:

* relative targets must exist on disk (resolved against the file's
  directory; a ``#fragment`` suffix is stripped first);
* ``#fragment`` self-links must match a heading anchor in the same file
  (GitHub anchor rules: lowercase, punctuation dropped, spaces to dashes);
* absolute ``http(s)://`` / ``mailto:`` targets are *not* fetched (CI must
  not depend on the network) — they are only checked for obvious
  malformations like embedded whitespace.

Exits 1 listing every broken link, 0 when all files are clean.
"""

import re
import sys
from pathlib import Path

# Inline links/images; deliberately simple (no reference-style links in
# this repo). LINK_RE matches well-formed targets; SPACED_LINK_RE catches
# targets with embedded whitespace and no quoted title — malformed on
# GitHub — which are reported as errors rather than silently skipped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
SPACED_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\"]*\s[^)\"]*)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_anchor(heading):
    """GitHub's heading -> anchor id transform (close enough for ASCII)."""
    anchor = heading.strip().lower()
    # Strip code/emphasis markers but keep underscores: they are word
    # characters to GitHub's slugger (`wsr_plan` -> wsr_plan).
    anchor = re.sub(r"[`*]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def strip_code(text):
    """Removes fenced and inline code spans so example links are ignored."""
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path):
    errors = []
    raw = path.read_text(encoding="utf-8")
    anchors = {github_anchor(m.group(1))
               for m in (HEADING_RE.match(line) for line in raw.splitlines())
               if m}
    stripped = strip_code(raw)
    for match in SPACED_LINK_RE.finditer(stripped):
        errors.append(f"{path}: whitespace in link target ({match.group(1)})")
    for match in LINK_RE.finditer(stripped):
        target = match.group(1).split(' "')[0].strip()
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path}: broken anchor {target}")
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: missing file {target}")
        elif fragment and resolved.suffix == ".md":
            linked = resolved.read_text(encoding="utf-8")
            linked_anchors = {
                github_anchor(m.group(1))
                for m in (HEADING_RE.match(line)
                          for line in linked.splitlines()) if m}
            if fragment not in linked_anchors:
                errors.append(f"{path}: broken anchor {target}")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for name in sys.argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"ok: {len(sys.argv) - 1} files, all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
