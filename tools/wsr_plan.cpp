// wsr_plan: command-line front end to the planner.
//
//   wsr_plan <collective> <grid> <bytes> [--algo=NAME] [--simulate]
//            [--json] [--dump] [--tr=N]
//
//   collective: reduce | allreduce | broadcast
//   grid:       P (a 1D row) or WxH (a 2D grid)
//   bytes:      per-PE vector size in bytes (4 bytes per f32 wavelet)
//
// Examples:
//   wsr_plan reduce 512 1024                # model-selected 1D reduce
//   wsr_plan allreduce 64x64 4096 --simulate
//   wsr_plan reduce 512 64 --algo=TwoPhase --dump
//   wsr_plan reduce 16 256 --algo=AutoGen --json > schedule.json
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "flowsim/flowsim.hpp"
#include "runtime/planner.hpp"
#include "runtime/verify.hpp"
#include "wse/export.hpp"

namespace {

using namespace wsr;

int usage() {
  std::fprintf(stderr,
               "usage: wsr_plan <reduce|allreduce|broadcast> <P|WxH> <bytes>\n"
               "                [--algo=Star|Chain|Tree|TwoPhase|AutoGen]\n"
               "                [--simulate] [--json] [--dump] [--tr=N]\n");
  return 2;
}

std::optional<ReduceAlgo> parse_algo(const std::string& s) {
  if (s == "Star") return ReduceAlgo::Star;
  if (s == "Chain") return ReduceAlgo::Chain;
  if (s == "Tree") return ReduceAlgo::Tree;
  if (s == "TwoPhase") return ReduceAlgo::TwoPhase;
  if (s == "AutoGen") return ReduceAlgo::AutoGen;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string collective = argv[1];
  const std::string grid_arg = argv[2];
  const u64 bytes = std::strtoull(argv[3], nullptr, 10);
  if (bytes == 0 || bytes % 4 != 0) {
    std::fprintf(stderr, "bytes must be a positive multiple of 4\n");
    return 2;
  }
  const u32 vec_len = static_cast<u32>(bytes / 4);

  std::optional<ReduceAlgo> algo;
  bool simulate = false, json = false, dump = false;
  MachineParams mp;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--algo=", 0) == 0) {
      algo = parse_algo(a.substr(7));
      if (!algo) return usage();
    } else if (a == "--simulate") {
      simulate = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--dump") {
      dump = true;
    } else if (a.rfind("--tr=", 0) == 0) {
      mp.ramp_latency = static_cast<u32>(std::strtoul(a.c_str() + 5, nullptr, 10));
    } else {
      return usage();
    }
  }

  GridShape grid;
  const auto x = grid_arg.find('x');
  if (x == std::string::npos) {
    grid = {static_cast<u32>(std::strtoul(grid_arg.c_str(), nullptr, 10)), 1};
  } else {
    grid = {static_cast<u32>(std::strtoul(grid_arg.substr(0, x).c_str(), nullptr, 10)),
            static_cast<u32>(std::strtoul(grid_arg.substr(x + 1).c_str(), nullptr, 10))};
  }
  if (grid.num_pes() < 2) {
    std::fprintf(stderr, "need at least 2 PEs\n");
    return 2;
  }

  const runtime::Planner planner(std::max(grid.width, grid.height), mp);
  runtime::Plan plan = [&] {
    if (grid.is_row()) {
      if (collective == "reduce") return planner.plan_reduce_1d(grid.width, vec_len, algo);
      if (collective == "allreduce") return planner.plan_allreduce_1d(grid.width, vec_len, algo);
      if (collective == "broadcast") return planner.plan_broadcast_1d(grid.width, vec_len);
    } else {
      if (collective == "reduce") return planner.plan_reduce_2d(grid, vec_len, {}, algo);
      if (collective == "allreduce") return planner.plan_allreduce_2d(grid, vec_len, algo);
      if (collective == "broadcast") return planner.plan_broadcast_2d(grid, vec_len);
    }
    std::exit(usage());
  }();

  if (json) {
    std::printf("%s\n", wse::to_json(plan.schedule).c_str());
    return 0;
  }
  std::fprintf(stderr, "collective : %s on %ux%u PEs, %llu bytes/PE\n",
               collective.c_str(), grid.width, grid.height,
               static_cast<unsigned long long>(bytes));
  std::fprintf(stderr, "algorithm  : %s\n", plan.algorithm.c_str());
  std::fprintf(stderr, "predicted  : %lld cycles (%.3f us at %.0f MHz)\n",
               static_cast<long long>(plan.prediction.cycles),
               mp.cycles_to_us(plan.prediction.cycles), mp.clock_mhz);
  std::fprintf(stderr, "model terms: %s\n",
               to_string(plan.prediction.terms).c_str());
  if (collective == "reduce" && grid.is_row()) {
    std::fprintf(stderr, "lower bound: %.0f cycles\n",
                 planner.reduce_1d_lower_bound(grid.width, vec_len));
  }
  if (dump) std::printf("%s", plan.schedule.dump().c_str());
  if (simulate) {
    if (grid.num_pes() <= 4096 && plan.prediction.cycles <= 200000) {
      const auto r = runtime::verify_on_fabric(plan.schedule,
                                               collective == "broadcast");
      std::fprintf(stderr, "fabric sim : %lld cycles, results %s\n",
                   static_cast<long long>(r.cycles),
                   r.ok ? "verified" : "WRONG");
      if (!r.ok) {
        std::fprintf(stderr, "  %s\n", r.error.c_str());
        return 1;
      }
    } else {
      const auto r = flowsim::run_flow(plan.schedule);
      std::fprintf(stderr, "flow sim   : %lld cycles (grid too large for "
                   "cycle-level simulation)\n",
                   static_cast<long long>(r.cycles));
    }
  }
  return 0;
}
