// wsr_plan: command-line front end to the planner.
//
//   wsr_plan <collective> <grid> <bytes> [--algo=NAME] [--simulate]
//            [--json] [--dump] [--tr=N] [--cache-dir=DIR]
//            [--failed-link=X,Y,DIR]... [--slow-link=X,Y,DIR,FACTOR]...
//   wsr_plan --list-algorithms [--json]
//
//   collective: reduce | allreduce | broadcast | allgather | reducescatter
//   grid:       P (a 1D row) or WxH (a 2D grid)
//   bytes:      per-PE vector size in bytes (4 bytes per f32 wavelet)
//
// Algorithm names come from the registry (see --list-algorithms); short
// forms are accepted where unambiguous ("Chain" resolves to "Chain+Bcast"
// for an AllReduce and to "X-Y Chain" on a 2D grid).
//
// --cache-dir=DIR serves through the same persistent plan store the wsrd
// daemon uses (docs/serving.md): a shape this directory has seen before —
// from any process — is answered from disk instead of planned.
//
// --failed-link / --slow-link describe the machine, not the request: each
// names a directed link leaving PE (X,Y) towards DIR (E/W/N/S) that is
// failed resp. throttled to one wavelet per FACTOR cycles. The model prices
// the degradation (a failed link in the grid makes every plan unroutable),
// --simulate runs the fabric with it, and distinct override sets are
// distinct plan-cache keys.
//
// Examples:
//   wsr_plan reduce 512 1024                # model-selected 1D reduce
//   wsr_plan allreduce 64x64 4096 --simulate
//   wsr_plan reduce 512 64 --algo=TwoPhase --dump
//   wsr_plan allgather 16 4096 --simulate
//   wsr_plan reducescatter 8 4096 --algo=Halving
//   wsr_plan reduce 16 256 --algo=AutoGen --json > plan.json
//   wsr_plan reduce 8 1024 --slow-link=3,0,E,4 --simulate
//   wsr_plan reduce 128 4096 --cache-dir=/var/tmp/wsr-plans
//   wsr_plan --list-algorithms --json
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/link_override.hpp"
#include "flowsim/flowsim.hpp"
#include "registry/algorithm_registry.hpp"
#include "runtime/persistent_plan_cache.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/plan_json.hpp"
#include "runtime/planner.hpp"
#include "runtime/verify.hpp"
#include "wse/checks.hpp"
#include "wse/export.hpp"

namespace {

using namespace wsr;

int usage() {
  std::fprintf(
      stderr,
      "usage: wsr_plan "
      "<reduce|allreduce|broadcast|allgather|reducescatter> <P|WxH> <bytes>\n"
      "                [--algo=NAME] [--simulate] [--json] [--dump]\n"
      "                [--tr=N] [--cache-dir=DIR]\n"
      "                [--failed-link=X,Y,DIR]... "
      "[--slow-link=X,Y,DIR,FACTOR]...\n"
      "       wsr_plan --list-algorithms [--json]\n"
      "NAME is a registry algorithm name (see --list-algorithms).\n"
      "DIR is a persistent plan store shared with wsrd (docs/serving.md).\n"
      "--failed-link/--slow-link mark the directed link leaving PE (X,Y)\n"
      "towards E/W/N/S as failed resp. throttled to 1 wavelet per FACTOR\n"
      "cycles (FACTOR >= 2); repeat per degraded link.\n");
  return 2;
}

int list_algorithms(bool json) {
  const auto all = registry::AlgorithmRegistry::instance().all();
  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const auto& d = *all[i];
      std::printf(
          "%s\n  {\"name\":\"%s\",\"collective\":\"%s\",\"dims\":\"%s\","
          "\"color_budget\":%u,\"auto_selectable\":%s,\"model_generated\":%s}",
          i == 0 ? "" : ",", d.name.c_str(), registry::name(d.collective),
          registry::name(d.dims), d.color_budget,
          d.auto_selectable ? "true" : "false",
          d.model_generated ? "true" : "false");
    }
    std::printf("\n]\n");
    return 0;
  }
  std::printf("%-16s %-10s %-4s %-7s %-11s %s\n", "name", "collective", "dims",
              "colors", "selectable", "generated");
  for (const auto* d : all) {
    std::printf("%-16s %-10s %-4s %-7u %-11s %s\n", d->name.c_str(),
                registry::name(d->collective), registry::name(d->dims),
                d->color_budget, d->auto_selectable ? "yes" : "no",
                d->model_generated ? "yes" : "no");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--list-algorithms") == 0) {
    const bool json = argc >= 3 && std::strcmp(argv[2], "--json") == 0;
    return list_algorithms(json);
  }
  if (argc < 4) return usage();
  const std::string collective_arg = argv[1];
  const std::string grid_arg = argv[2];
  const u64 bytes = std::strtoull(argv[3], nullptr, 10);
  if (bytes == 0 || bytes % 4 != 0) {
    std::fprintf(stderr, "bytes must be a positive multiple of 4\n");
    return 2;
  }
  const u32 vec_len = static_cast<u32>(bytes / 4);

  std::string algo, cache_dir;
  bool simulate = false, json = false, dump = false;
  MachineParams mp;
  for (int i = 4; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--algo=", 0) == 0) {
      algo = a.substr(7);
      if (algo.empty()) return usage();
    } else if (a == "--simulate") {
      simulate = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--dump") {
      dump = true;
    } else if (a.rfind("--tr=", 0) == 0) {
      mp.ramp_latency = static_cast<u32>(std::strtoul(a.c_str() + 5, nullptr, 10));
    } else if (a.rfind("--failed-link=", 0) == 0 ||
               a.rfind("--slow-link=", 0) == 0) {
      const bool failed = a[2] == 'f';
      const auto o = parse_link_override(a.substr(a.find('=') + 1));
      if (!o.has_value() || o->failed() != failed) {
        std::fprintf(stderr,
                     failed ? "--failed-link wants X,Y,DIR (no factor)\n"
                            : "--slow-link wants X,Y,DIR,FACTOR with "
                              "FACTOR >= 2\n");
        return 2;
      }
      mp.link_overrides.push_back(*o);
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      cache_dir = a.substr(12);
      if (cache_dir.empty()) return usage();
    } else {
      return usage();
    }
  }

  const auto parsed_grid = runtime::parse_grid(grid_arg);
  if (!parsed_grid.has_value()) {
    std::fprintf(stderr, "grid must be P or WxH\n");
    return 2;
  }
  const GridShape grid = *parsed_grid;
  if (grid.num_pes() < 2) {
    std::fprintf(stderr, "need at least 2 PEs\n");
    return 2;
  }

  runtime::PlanRequest request;
  request.grid = grid;
  request.vec_len = vec_len;
  if (collective_arg == "reduce") {
    request.collective = runtime::Collective::Reduce;
  } else if (collective_arg == "allreduce") {
    request.collective = runtime::Collective::AllReduce;
  } else if (collective_arg == "broadcast") {
    request.collective = runtime::Collective::Broadcast;
  } else if (collective_arg == "allgather") {
    request.collective = runtime::Collective::AllGather;
  } else if (collective_arg == "reducescatter" ||
             collective_arg == "reduce-scatter") {
    request.collective = runtime::Collective::ReduceScatter;
  } else {
    return usage();
  }
  if (!algo.empty()) {
    request.algorithm = runtime::resolve_algorithm_name(
        request.collective, registry::dims_for(grid), algo);
    if (request.algorithm.empty()) {
      std::fprintf(stderr,
                   "unknown algorithm '%s' for this collective/grid; see "
                   "--list-algorithms\n",
                   algo.c_str());
      return 2;
    }
    const registry::AlgorithmDescriptor* desc =
        registry::AlgorithmRegistry::instance().find(
            request.collective, registry::dims_for(grid), request.algorithm);
    if (!desc->applicable(grid, vec_len)) {
      std::fprintf(stderr,
                   "algorithm '%s' is not applicable to %ux%u PEs with %llu "
                   "bytes/PE (e.g. Ring needs bytes divisible by 4*P)\n",
                   request.algorithm.c_str(), grid.width, grid.height,
                   static_cast<unsigned long long>(bytes));
      return 2;
    }
  } else if (!runtime::any_applicable_algorithm(request.collective, grid,
                                                vec_len)) {
    // e.g. a 1xH column grid: dims-wise 2D, but no 2D algorithm builds on
    // width 1. The planner asserts on empty selection; fail cleanly here.
    std::fprintf(stderr,
                 "no applicable algorithm for %s on %ux%u PEs with %llu "
                 "bytes/PE\n",
                 collective_arg.c_str(), grid.width, grid.height,
                 static_cast<unsigned long long>(bytes));
    return 2;
  }

  // Plan through the serving-path cache (get_or_plan) so --json can report
  // the same hit/miss/eviction counters a long-lived server would expose; a
  // one-shot CLI run records exactly one miss — unless --cache-dir attaches
  // the persistent store, in which case a shape this directory has seen
  // before (from any process) is a disk hit instead of a plan.
  const runtime::Planner planner(std::max(grid.width, grid.height), mp);
  runtime::PlanCache cache;
  std::unique_ptr<runtime::PersistentPlanCache> disk;
  if (!cache_dir.empty()) {
    disk = std::make_unique<runtime::PersistentPlanCache>(cache_dir);
    cache.attach_disk_store(disk.get());
  }
  runtime::PlanSource tier = runtime::PlanSource::Planned;
  const std::shared_ptr<const runtime::Plan> plan_ptr =
      cache.get_or_plan(planner, request, &tier);
  const runtime::Plan& plan = *plan_ptr;

  if (json) {
    // Registry-introspected plan JSON (runtime/plan_json.cpp, the exact
    // object wsrd serves): selection metadata, serving counters, model
    // terms, and the schedule.
    std::string extras;
    if (disk != nullptr) {
      extras += std::string("\"cache_tier\":\"") + runtime::name(tier) + "\",";
    }
    extras += runtime::plan_cache_counters_json(cache);
    std::printf("%s\n",
                runtime::plan_response_json(request, plan, mp, extras).c_str());
    return 0;
  }
  std::fprintf(stderr, "collective : %s on %ux%u PEs, %llu bytes/PE\n",
               collective_arg.c_str(), grid.width, grid.height,
               static_cast<unsigned long long>(bytes));
  std::fprintf(stderr, "algorithm  : %s\n", plan.algorithm.c_str());
  if (disk != nullptr) {
    std::fprintf(stderr, "cache tier : %s (%s: %zu plans)\n",
                 runtime::name(tier), disk->store_path().c_str(),
                 disk->size());
  }
  std::fprintf(stderr, "predicted  : %lld cycles (%.3f us at %.0f MHz)\n",
               static_cast<long long>(plan.prediction.cycles),
               mp.cycles_to_us(plan.prediction.cycles), mp.clock_mhz);
  std::fprintf(stderr, "model terms: %s\n",
               to_string(plan.prediction.terms).c_str());
  if (request.collective == runtime::Collective::Reduce && grid.is_row()) {
    std::fprintf(stderr, "lower bound: %.0f cycles\n",
                 planner.reduce_1d_lower_bound(grid.width, vec_len));
  }
  if (dump) std::printf("%s", plan.schedule.dump().c_str());
  if (simulate) {
    // Both simulators honor the machine's link overrides; a schedule that
    // routes across a *failed* link cannot run at all.
    if (wse::schedule_crosses_failed_link(plan.schedule, mp.link_overrides)) {
      std::fprintf(stderr,
                   "fabric sim : schedule routes across a failed link; "
                   "nothing to simulate\n");
      return 1;
    }
    if (grid.num_pes() <= 4096 && plan.prediction.cycles <= 200000) {
      wse::FabricOptions fo;
      fo.link_overrides = mp.link_overrides;
      const auto r = runtime::verify_collective(
          plan.schedule, runtime::semantic_for(request.collective), fo);
      std::fprintf(stderr, "fabric sim : %lld cycles, results %s\n",
                   static_cast<long long>(r.cycles),
                   r.ok ? "verified" : "WRONG");
      if (!r.ok) {
        std::fprintf(stderr, "  %s\n", r.error.c_str());
        return 1;
      }
    } else {
      flowsim::FlowOptions fo;
      fo.link_overrides = mp.link_overrides;
      const auto r = flowsim::run_flow(plan.schedule, fo);
      std::fprintf(stderr, "flow sim   : %lld cycles (grid too large for "
                   "cycle-level simulation)\n",
                   static_cast<long long>(r.cycles));
    }
  }
  return 0;
}
