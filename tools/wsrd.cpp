// wsrd: the long-lived plan-serving daemon.
//
//   wsrd --pipe                      serve stdin -> stdout (testing / CI)
//   wsrd --socket=PATH [--tcp=SPEC]  serve a Unix stream socket (and/or TCP)
//   wsrd --tcp=[HOST:]PORT           serve TCP (loopback by default; port 0
//                                    binds an ephemeral port, printed on
//                                    stderr)
//
// serving options (docs/cli.md has the full table):
//   --cache-dir=DIR      persistent plan store shared with `wsr_plan
//                        --cache-dir` and other daemons (disk tier)
//   --max-entries=N      bound the in-memory plan cache (LRU; 0 = unbounded)
//   --jobs=N             plan_many worker threads per batch (0 = hardware)
//
// cache peering options (docs/serving.md "Cache peering"):
//   --peer=TARGET        consult another wsrd on local misses: "unix:PATH",
//                        an absolute socket path, "host:port", or a port.
//                        Every peer failure degrades silently to the local
//                        tiers (deadline, retries, circuit breaker).
//   --peer-timeout-ms=N  per-op deadline on the peer connection (250)
//   --peer-retries=N     extra attempts per failed peer op (1)
//   --serve-cache        answer cache_get/cache_put from other daemons
//   --prefetch=N         warm the N historically hottest shapes at boot
//
// robustness options (docs/serving.md "Operations & limits"):
//   --max-conns=N            connection cap; over it, accepts answer
//                            {"error":"overloaded"} and close (default 1024)
//   --max-inflight=N         queued+dispatched request high-water mark;
//                            past it plan lines answer "overloaded" (4096)
//   --max-line-bytes=N       request frame bound; over it, "too_large" (1MiB)
//   --idle-timeout-ms=N      evict silent connections (60000)
//   --request-timeout-ms=N   a partial line must complete in this window
//                            (anti slow-loris; 10000)
//   --write-timeout-ms=N     a non-empty write buffer must drain in this
//                            window (slow-reader eviction; 30000)
//   --drain-timeout-ms=N     SIGTERM drain budget before force-close (5000)
//
// Protocol (docs/serving.md): one JSON object per line in, one JSON object
// per line out, in request order. The daemon never aborts on a bad request:
// protocol and validation errors answer {"error":...} on the same line slot.
// SIGTERM/SIGINT drain gracefully (stop accepting, finish in-flight work,
// flush, exit 0); a second signal forces immediate shutdown.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "serving/core.hpp"
#include "serving/daemon.hpp"
#include "serving/listener.hpp"
#include "serving/pipe.hpp"

namespace {

using namespace wsr;

volatile std::sig_atomic_t g_stop = 0;
int g_wake_fd = -1;

void handle_signal(int) {
  g_stop = g_stop < 2 ? g_stop + 1 : 2;
  if (g_wake_fd >= 0) {
    const u64 one = 1;
    // write(2) is async-signal-safe; the eventfd wake is the only thing a
    // handler may do to the loop.
    [[maybe_unused]] const ssize_t n = ::write(g_wake_fd, &one, sizeof one);
  }
}

int usage() {
  std::fprintf(
      stderr,
      "usage: wsrd --pipe                [options]\n"
      "       wsrd --socket=PATH        [--tcp=[HOST:]PORT] [options]\n"
      "       wsrd --tcp=[HOST:]PORT    [options]\n"
      "options: --cache-dir=DIR --max-entries=N --jobs=N\n"
      "         --peer=TARGET --peer-timeout-ms=N --peer-retries=N\n"
      "         --serve-cache --prefetch=N\n"
      "         --max-conns=N --max-inflight=N --max-line-bytes=N\n"
      "         --idle-timeout-ms=N --request-timeout-ms=N\n"
      "         --write-timeout-ms=N --drain-timeout-ms=N\n"
      "Serves newline-delimited JSON plan requests (docs/serving.md).\n");
  return 2;
}

bool parse_u64_flag(const std::string& arg, const char* prefix, u64* out) {
  const std::size_t len = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  *out = std::strtoull(arg.c_str() + len, &end, 10);
  if (end == arg.c_str() + len || *end != '\0') {
    std::fprintf(stderr, "wsrd: bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool pipe_mode = false;
  std::string socket_path, tcp_spec;
  serving::Core::Options opts;
  serving::Limits limits;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    u64 v = 0;
    if (a == "--pipe") {
      pipe_mode = true;
    } else if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(9);
    } else if (a.rfind("--tcp=", 0) == 0) {
      tcp_spec = a.substr(6);
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      opts.cache_dir = a.substr(12);
    } else if (a.rfind("--peer=", 0) == 0) {
      opts.peer = a.substr(7);
    } else if (a == "--serve-cache") {
      opts.serve_cache = true;
    } else if (parse_u64_flag(a, "--peer-timeout-ms=", &v)) {
      opts.peer_timeout_ms = static_cast<u32>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--peer-retries=", &v)) {
      opts.peer_retries = static_cast<u32>(v);
    } else if (parse_u64_flag(a, "--prefetch=", &v)) {
      opts.prefetch = v;
    } else if (parse_u64_flag(a, "--max-entries=", &v)) {
      opts.max_entries = v;
    } else if (parse_u64_flag(a, "--jobs=", &v)) {
      opts.jobs = static_cast<u32>(v);
    } else if (parse_u64_flag(a, "--max-conns=", &v)) {
      limits.max_conns = v > 0 ? v : 1;
    } else if (parse_u64_flag(a, "--max-inflight=", &v)) {
      limits.max_inflight = v > 0 ? v : 1;
    } else if (parse_u64_flag(a, "--max-line-bytes=", &v)) {
      limits.max_line_bytes = v > 0 ? v : 1;
    } else if (parse_u64_flag(a, "--idle-timeout-ms=", &v)) {
      limits.idle_timeout_ms = static_cast<i64>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--request-timeout-ms=", &v)) {
      limits.request_timeout_ms = static_cast<i64>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--write-timeout-ms=", &v)) {
      limits.write_timeout_ms = static_cast<i64>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--drain-timeout-ms=", &v)) {
      limits.drain_timeout_ms = static_cast<i64>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--dispatchers=", &v)) {
      limits.dispatchers = static_cast<u32>(v);
    } else {
      return usage();
    }
  }
  const bool socket_mode = !socket_path.empty() || !tcp_spec.empty();
  if (pipe_mode == socket_mode) return usage();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a dropped connection is not fatal

  serving::Core core(opts);
  if (core.disk() != nullptr) {
    const auto s = core.disk()->stats();
    std::fprintf(stderr,
                 "wsrd: disk store %s: %llu plans loaded (%llu dropped) in "
                 "%.3f s\n",
                 core.disk()->store_path().c_str(),
                 static_cast<unsigned long long>(s.loaded),
                 static_cast<unsigned long long>(s.load_errors),
                 s.load_seconds);
  }
  if (opts.prefetch > 0) {
    std::fprintf(stderr, "wsrd: prefetched %zu hot shapes\n",
                 core.prefetched());
  }
  if (!opts.peer.empty()) {
    std::fprintf(stderr, "wsrd: peer cache tier at %s (timeout %u ms, "
                 "%u retries)\n",
                 opts.peer.c_str(), opts.peer_timeout_ms, opts.peer_retries);
  }

  if (pipe_mode) {
    serving::serve_pipe(core, STDIN_FILENO, STDOUT_FILENO,
                        limits.max_line_bytes, &g_stop);
    return 0;
  }

  serving::Daemon daemon(core, limits, &g_stop);
  if (!socket_path.empty()) {
    const int fd = serving::make_unix_listener(socket_path);
    if (fd < 0) return 1;
    daemon.add_listener(fd, /*tcp=*/false, socket_path, socket_path);
    std::fprintf(stderr, "wsrd: serving on unix %s\n", socket_path.c_str());
  }
  if (!tcp_spec.empty()) {
    u16 port = 0;
    const int fd = serving::make_tcp_listener(tcp_spec, &port);
    if (fd < 0) return 1;
    const std::size_t colon = tcp_spec.rfind(':');
    const std::string host =
        colon == std::string::npos || colon == 0 ? "127.0.0.1"
                                                 : tcp_spec.substr(0, colon);
    daemon.add_listener(fd, /*tcp=*/true, "tcp");
    std::fprintf(stderr, "wsrd: serving on tcp %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
  }
  g_wake_fd = daemon.loop().wake_fd();
  const int rc = daemon.run();
  std::fprintf(stderr, "wsrd: shut down cleanly\n");
  return rc;
}
