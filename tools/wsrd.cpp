// wsrd: the long-lived plan-serving daemon.
//
//   wsrd --pipe          [options]     serve stdin -> stdout (testing / CI)
//   wsrd --socket=PATH   [options]     serve a Unix stream socket
//
// options:
//   --cache-dir=DIR      persistent plan store shared with `wsr_plan
//                        --cache-dir` and other daemons (disk tier)
//   --max-entries=N      bound the in-memory plan cache (LRU; 0 = unbounded)
//   --jobs=N             plan_many worker threads per batch (0 = hardware)
//
// Protocol (docs/serving.md): one JSON object per line in, one JSON object
// per line out, in request order.
//
//   {"collective":"reduce","grid":"64x64","bytes":4096}
//   {"collective":"allreduce","grid":{"width":16,"height":1},
//    "vec_len":1024,"algorithm":"Chain","tr":2,"id":7}
//   {"verb":"stats"}
//
// Plan responses are the `wsr_plan --json` object plus serving fields: the
// echoed "id" (when given), "cache_tier" ("memory" | "disk" | "planned" —
// which tier answered), and the live "plan_cache" counters. Requests that
// arrive together are planned as one batch through Planner::plan_many on
// the common/parallel.hpp pool; responses always come back in input order.
//
// The daemon never aborts on a bad request: protocol and validation errors
// answer {"error":...} on the same line slot and the connection lives on.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/minijson.hpp"
#include "registry/algorithm_registry.hpp"
#include "runtime/persistent_plan_cache.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/plan_json.hpp"
#include "runtime/planner.hpp"

namespace {

using namespace wsr;

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void handle_signal(int) {
  g_stop = 1;
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

int usage() {
  std::fprintf(stderr,
               "usage: wsrd --pipe        [--cache-dir=DIR] [--max-entries=N] "
               "[--jobs=N]\n"
               "       wsrd --socket=PATH [--cache-dir=DIR] [--max-entries=N] "
               "[--jobs=N]\n"
               "Serves newline-delimited JSON plan requests (docs/serving.md)."
               "\n");
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Planner table key: the full machine parameterization (never the hash —
/// the cache-layer invariant that a hash collision can never cross-serve
/// machines holds here too) plus the planner's DP bound.
struct PlannerKey {
  MachineParams mp;
  u32 max_dim = 2;

  bool operator<(const PlannerKey& o) const {
    return std::tie(mp.ramp_latency, mp.clock_mhz, mp.sram_bytes,
                    mp.num_colors, max_dim) <
           std::tie(o.mp.ramp_latency, o.mp.clock_mhz, o.mp.sram_bytes,
                    o.mp.num_colors, o.max_dim);
  }
};

/// Shared serving state: one memory cache, one optional disk store, and one
/// Planner per (machine, max-dimension) — the same construction wsr_plan
/// uses per invocation, so plans (and therefore cache keys and responses)
/// are identical between the daemon and the one-shot CLI.
struct Server {
  runtime::PlanCache cache;
  std::unique_ptr<runtime::PersistentPlanCache> disk;
  u32 jobs = 0;

  std::mutex planners_mu;
  std::map<PlannerKey, std::unique_ptr<runtime::Planner>> planners;

  std::atomic<u64> requests{0};
  std::atomic<u64> request_errors{0};

  // Open socket connections: shutdown must outwait them — their threads
  // serve through this object (see run_socket).
  std::mutex conns_mu;
  std::condition_variable conns_cv;
  u64 open_conns = 0;

  explicit Server(std::size_t max_entries, const std::string& cache_dir,
                  u32 jobs_arg)
      : cache(16, max_entries), jobs(jobs_arg) {
    if (!cache_dir.empty()) {
      disk = std::make_unique<runtime::PersistentPlanCache>(cache_dir);
      cache.attach_disk_store(disk.get());
    }
  }

  const runtime::Planner& planner_for(const MachineParams& mp, u32 max_dim) {
    const PlannerKey key{mp, std::max<u32>(max_dim, 2)};
    std::lock_guard<std::mutex> lock(planners_mu);
    auto& slot = planners[key];
    if (!slot) slot = std::make_unique<runtime::Planner>(key.max_dim, mp);
    return *slot;
  }

  std::string stats_json() {
    std::string out = "{\"stats\":{";
    out += "\"requests\":" + std::to_string(requests.load());
    out += ",\"request_errors\":" + std::to_string(request_errors.load());
    out += ",\"memory_hits\":" + std::to_string(cache.hits());
    out += ",\"disk_hits\":" + std::to_string(cache.disk_hits());
    out += ",\"planned\":" + std::to_string(cache.misses());
    out += ",\"evictions\":" + std::to_string(cache.evictions());
    out += ",\"memory_entries\":" + std::to_string(cache.size());
    out += ",\"memory_max_entries\":" + std::to_string(cache.max_entries());
    if (disk) {
      const auto s = disk->stats();
      out += ",\"disk\":{\"dir\":\"" + json_escape(disk->dir()) + "\"";
      out += ",\"entries\":" + std::to_string(disk->size());
      out += ",\"loaded\":" + std::to_string(s.loaded);
      out += ",\"load_errors\":" + std::to_string(s.load_errors);
      out += ",\"hits\":" + std::to_string(s.hits);
      out += ",\"misses\":" + std::to_string(s.misses);
      out += ",\"appended\":" + std::to_string(s.appended);
      out += ",\"compactions\":" + std::to_string(s.compactions);
      out += ",\"appends_skipped\":" + std::to_string(s.appends_skipped);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6f", s.load_seconds);
      out += ",\"load_seconds\":";
      out += buf;
      out += ",\"file_bytes\":" + std::to_string(s.file_bytes) + "}";
    }
    out += "}}";
    return out;
  }
};

/// One parsed input line: exactly one of `error`, `stats`, or a plan job.
struct Line {
  std::string id_json;  ///< echoed "id" value, already serialized ("" = none)
  std::string error;
  bool stats = false;
  runtime::PlanRequest req;
  MachineParams mp;
};

Line parse_line(const std::string& text) {
  Line line;
  std::string parse_error;
  const auto parsed = json::parse(text, &parse_error);
  if (!parsed.has_value()) {
    line.error = "invalid JSON: ";
    line.error += parse_error;
    return line;
  }
  const json::Value& v = *parsed;
  if (!v.is_object()) {
    line.error = "request must be a JSON object";
    return line;
  }

  // Echo "id" (number or string) so clients can correlate pipelined
  // responses; other types are a request error.
  if (const json::Value* id = v.get("id")) {
    if (id->is_string()) {
      line.id_json.push_back('"');
      line.id_json += json_escape(id->string);
      line.id_json.push_back('"');
    } else if (id->is_number()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", id->number);
      line.id_json = buf;
    } else {
      line.error = "\"id\" must be a number or a string";
      return line;
    }
  }

  const std::string verb = v.get_string("verb", "plan");
  if (verb == "stats") {
    line.stats = true;
    return line;
  }
  if (verb != "plan") {
    line.error = "unknown verb \"" + json_escape(verb) +
                 "\" (expected \"plan\" or \"stats\")";
    return line;
  }

  const std::string collective = v.get_string("collective");
  if (collective == "reduce") {
    line.req.collective = runtime::Collective::Reduce;
  } else if (collective == "allreduce") {
    line.req.collective = runtime::Collective::AllReduce;
  } else if (collective == "broadcast") {
    line.req.collective = runtime::Collective::Broadcast;
  } else {
    line.error = "\"collective\" must be reduce | allreduce | broadcast";
    return line;
  }

  const json::Value* grid = v.get("grid");
  if (grid == nullptr) {
    line.error = "missing \"grid\"";
    return line;
  }
  if (grid->is_string()) {
    const auto parsed_grid = runtime::parse_grid(grid->string);
    if (!parsed_grid.has_value()) {
      line.error = "\"grid\" must be \"P\" or \"WxH\"";
      return line;
    }
    line.req.grid = *parsed_grid;
  } else if (grid->is_object()) {
    const auto w = grid->get_uint("width");
    const auto h = grid->get_uint("height");
    if (!w.has_value() || !h.has_value() || *w == 0 || *h == 0 ||
        *w > 0xffffffffull || *h > 0xffffffffull) {
      line.error = "\"grid\" object needs positive \"width\" and \"height\"";
      return line;
    }
    line.req.grid = {static_cast<u32>(*w), static_cast<u32>(*h)};
  } else {
    line.error = "\"grid\" must be a string or an object";
    return line;
  }
  if (line.req.grid.num_pes() < 2) {
    line.error = "need at least 2 PEs";
    return line;
  }

  const auto bytes = v.get_uint("bytes");
  const auto vec_len = v.get_uint("vec_len");
  if (bytes.has_value() == vec_len.has_value()) {
    line.error = "give exactly one of \"bytes\" (multiple of 4) or \"vec_len\"";
    return line;
  }
  if (bytes.has_value()) {
    if (*bytes == 0 || *bytes % 4 != 0 || *bytes / 4 > 0xffffffffull) {
      line.error = "\"bytes\" must be a positive multiple of 4";
      return line;
    }
    line.req.vec_len = static_cast<u32>(*bytes / 4);
  } else {
    if (*vec_len == 0 || *vec_len > 0xffffffffull) {
      line.error = "\"vec_len\" must be a positive wavelet count";
      return line;
    }
    line.req.vec_len = static_cast<u32>(*vec_len);
  }

  if (const json::Value* tr = v.get("tr")) {
    if (!tr->is_number() || tr->number < 0 || tr->number > 1024) {
      line.error = "\"tr\" must be a small non-negative ramp latency";
      return line;
    }
    line.mp.ramp_latency = static_cast<u32>(tr->number);
  }

  const std::string algo = v.get_string("algorithm");
  if (!algo.empty()) {
    const registry::Dims dims = registry::dims_for(line.req.grid);
    line.req.algorithm =
        runtime::resolve_algorithm_name(line.req.collective, dims, algo);
    if (line.req.algorithm.empty()) {
      line.error = "unknown algorithm \"" + json_escape(algo) +
                   "\" for this collective/grid";
      return line;
    }
    const registry::AlgorithmDescriptor* desc =
        registry::AlgorithmRegistry::instance().find(
            line.req.collective, dims, line.req.algorithm);
    if (!desc->applicable(line.req.grid, line.req.vec_len)) {
      line.error = "algorithm \"" + json_escape(line.req.algorithm) +
                   "\" is not applicable to this (grid, vec_len)";
      return line;
    }
  } else if (!runtime::any_applicable_algorithm(
                 line.req.collective, line.req.grid, line.req.vec_len)) {
    // e.g. a 1xH column grid: dims-wise 2D, but nothing builds on width 1.
    // Planner::plan would abort on this; answer an error instead.
    line.error = "no applicable algorithm for this collective/grid/bytes";
    return line;
  }
  return line;
}

bool write_all_fd(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Plans one batch of already-validated requests and emits responses in
/// input order. The batch is grouped per planner (requests may override the
/// machine via "tr") and each group goes through plan_many.
bool serve_batch(Server& server, std::vector<Line>& batch, int out_fd) {
  // Group the batch's plannable lines by their planner.
  std::map<const runtime::Planner*, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].error.empty() && !batch[i].stats) {
      const u32 max_dim =
          std::max(batch[i].req.grid.width, batch[i].req.grid.height);
      groups[&server.planner_for(batch[i].mp, max_dim)].push_back(i);
    }
  }

  std::vector<std::shared_ptr<const runtime::Plan>> plans(batch.size());
  std::vector<runtime::PlanSource> tiers(batch.size(),
                                         runtime::PlanSource::Planned);
  for (const auto& [planner, indices] : groups) {
    std::vector<runtime::PlanRequest> requests;
    requests.reserve(indices.size());
    for (std::size_t i : indices) requests.push_back(batch[i].req);
    std::vector<runtime::PlanSource> sources;
    const auto group_plans =
        planner->plan_many(requests, &server.cache, server.jobs, &sources);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      plans[indices[k]] = group_plans[k];
      tiers[indices[k]] = sources[k];
    }
  }

  std::string out;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Line& line = batch[i];
    server.requests.fetch_add(1);
    const std::string id_field =
        line.id_json.empty() ? "" : "\"id\":" + line.id_json + ",";
    if (!line.error.empty()) {
      server.request_errors.fetch_add(1);
      out += "{" + id_field + "\"error\":\"" + json_escape(line.error) + "\"}\n";
    } else if (line.stats) {
      out += server.stats_json() + "\n";
    } else {
      std::string extras = id_field;
      extras += "\"cache_tier\":\"";
      extras += runtime::name(tiers[i]);
      extras += "\",";
      extras += runtime::plan_cache_counters_json(server.cache);
      out += runtime::plan_response_json(line.req, *plans[i], line.mp, extras);
      out += "\n";
    }
  }
  batch.clear();
  return write_all_fd(out_fd, out);
}

/// Reads newline-delimited requests from `in_fd` until EOF. Everything one
/// read(2) delivers is parsed and served as one batch (a piped request file
/// becomes a handful of large batches; an interactive client gets per-line
/// responses), except that a "stats" line flushes the batch before it so
/// its counters reflect the requests that preceded it.
void serve_stream(Server& server, int in_fd, int out_fd) {
  std::string buffer;
  std::vector<Line> batch;
  char chunk[1 << 16];

  // One rule for every line, including the unterminated tail at EOF:
  // strip a trailing CR, skip whitespace-only lines, flush the batch
  // before a stats verb so its snapshot orders after prior requests.
  // Returns false when the output side failed (drop the connection).
  const auto take_line = [&](std::string text) {
    if (!text.empty() && text.back() == '\r') text.pop_back();
    if (text.find_first_not_of(" \t") == std::string::npos) return true;
    Line line = parse_line(text);
    if (line.stats && !batch.empty()) {
      std::vector<Line> pending;
      pending.swap(batch);
      if (!serve_batch(server, pending, out_fd)) return false;
    }
    batch.push_back(std::move(line));
    return true;
  };

  while (!g_stop) {
    const ssize_t n = ::read(in_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      if (!take_line(buffer.substr(start, nl - start))) return;
      start = nl + 1;
    }
    buffer.erase(0, start);

    if (!batch.empty() && !serve_batch(server, batch, out_fd)) return;
  }
  // Trailing request without a newline: still serve it.
  if (!buffer.empty() && !take_line(std::move(buffer))) return;
  if (!batch.empty()) serve_batch(server, batch, out_fd);
}

int run_socket(Server& server, const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("wsrd: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "wsrd: socket path too long\n");
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());  // replace a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    std::perror("wsrd: bind/listen");
    ::close(fd);
    return 1;
  }
  g_listen_fd = fd;
  std::fprintf(stderr, "wsrd: serving on %s\n", path.c_str());

  while (!g_stop) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by the signal handler
    }
    {
      std::lock_guard<std::mutex> lock(server.conns_mu);
      ++server.open_conns;
    }
    std::thread([&server, conn] {
      serve_stream(server, conn, conn);
      ::close(conn);
      std::lock_guard<std::mutex> lock(server.conns_mu);
      --server.open_conns;
      server.conns_cv.notify_all();
    }).detach();
  }
  // The Server (caches, planners, disk store) lives on the caller's stack:
  // wait out in-flight connection threads before it is destroyed.
  {
    std::unique_lock<std::mutex> lock(server.conns_mu);
    server.conns_cv.wait(lock, [&server] { return server.open_conns == 0; });
  }
  ::unlink(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool pipe_mode = false;
  std::string socket_path, cache_dir;
  std::size_t max_entries = 0;
  u32 jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--pipe") {
      pipe_mode = true;
    } else if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(9);
    } else if (a.rfind("--cache-dir=", 0) == 0) {
      cache_dir = a.substr(12);
    } else if (a.rfind("--max-entries=", 0) == 0) {
      max_entries = std::strtoull(a.c_str() + 14, nullptr, 10);
    } else if (a.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<u32>(std::strtoul(a.c_str() + 7, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (pipe_mode == !socket_path.empty()) return usage();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a dropped connection is not fatal

  Server server(max_entries, cache_dir, jobs);
  if (server.disk) {
    const auto s = server.disk->stats();
    std::fprintf(stderr,
                 "wsrd: disk store %s: %llu plans loaded (%llu dropped) in "
                 "%.3f s\n",
                 server.disk->store_path().c_str(),
                 static_cast<unsigned long long>(s.loaded),
                 static_cast<unsigned long long>(s.load_errors),
                 s.load_seconds);
  }
  if (pipe_mode) {
    serve_stream(server, STDIN_FILENO, STDOUT_FILENO);
    return 0;
  }
  return run_socket(server, socket_path);
}
