#!/usr/bin/env python3
"""Fault-injection harness: wsrd under wsrd_load chaos.

Usage: wsrd_chaos.py <path-to-wsrd> <path-to-wsrd_load>

One daemon with deliberately small limits serves BOTH transports (a Unix
socket and TCP on an ephemeral port). Then, as the `wsrd_chaos` ctest and
the CI serving-chaos job (which repeats it under ASan+UBSan):

1. A steady well-formed load runs over TCP *concurrently* with chaos over
   the Unix socket — slow-loris drips, torn-frame churn, binary garbage,
   oversized lines. The steady pass must finish violation-free while every
   fault lands.
2. Stalled readers must be evicted by the write deadline; a connection
   flood past --max-conns must be shed with in-band "overloaded".
3. An idle connection must be evicted by the idle deadline.
4. The stats verb must account for all of it: per-class eviction counters,
   shed connections, too_large rejections, and the latency histogram.
5. SIGTERM must drain gracefully: exit code 0 within the drain budget and
   the socket file unlinked.
6. Cache peering must degrade, never propagate: daemon A peers with daemon
   B, B is killed -9 mid-load, and A must keep answering every request
   violation-free (fresh plans instead of peer hits), trip its circuit
   breaker, then recover peer hits after B is revived and the cooldown
   elapses.

Stdlib only (no pip installs); exits non-zero with a diagnostic on the
first violation.
"""

import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

MAX_CONNS = 48
MAX_LINE_BYTES = 65536
REQUEST_TIMEOUT_MS = 600
WRITE_TIMEOUT_MS = 800
IDLE_TIMEOUT_MS = 1500
DRAIN_TIMEOUT_MS = 8000

STEADY_REQUESTS = 20000
SLOWLORIS_CONNS = 24
STALLED_CONNS = 8
OVERSIZED_CONNS = 4


def flood_conns():
    """As many as the fd limit allows, up to 1200 — the flood should dwarf
    the server's --max-conns by an order of magnitude."""
    try:
        import resource
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < hard:
            resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
            soft = hard
        return min(1200, max(64, soft - 64))
    except (ImportError, ValueError, OSError):
        return 128


def fail(message, *context):
    print(f"FAIL: {message}", file=sys.stderr)
    for item in context:
        print(f"  {item}", file=sys.stderr)
    sys.exit(1)


def start_daemon(wsrd, sock_path):
    proc = subprocess.Popen(
        [wsrd, f"--socket={sock_path}", "--tcp=127.0.0.1:0",
         f"--max-conns={MAX_CONNS}",
         f"--max-line-bytes={MAX_LINE_BYTES}",
         f"--request-timeout-ms={REQUEST_TIMEOUT_MS}",
         f"--write-timeout-ms={WRITE_TIMEOUT_MS}",
         f"--idle-timeout-ms={IDLE_TIMEOUT_MS}",
         f"--drain-timeout-ms={DRAIN_TIMEOUT_MS}"],
        stderr=subprocess.PIPE, text=True)

    stderr_lines = []
    port_box = {}
    ready = threading.Event()

    def drain_stderr():
        for line in proc.stderr:
            stderr_lines.append(line.rstrip("\n"))
            match = re.search(r"serving on tcp .*:(\d+)", line)
            if match:
                port_box["port"] = int(match.group(1))
            if "port" in port_box and any("serving on unix" in l
                                          for l in stderr_lines):
                ready.set()
        ready.set()  # EOF: unblock the waiter either way

    threading.Thread(target=drain_stderr, daemon=True).start()
    if not ready.wait(timeout=60) or "port" not in port_box:
        proc.kill()
        fail("daemon did not announce both endpoints", *stderr_lines)
    return proc, port_box["port"], stderr_lines


def load(wsrd_load, target, mode, *extra, timeout=600):
    argv = [wsrd_load, target, f"--mode={mode}", *extra]
    proc = subprocess.run(argv, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        fail(f"wsrd_load --mode={mode} exited with {proc.returncode}",
             " ".join(argv), proc.stdout, proc.stderr)
    return proc.stdout


def query_stats(sock_path):
    conn = socket.socket(socket.AF_UNIX)
    conn.settimeout(60)
    conn.connect(sock_path)
    conn.sendall(b'{"verb":"stats"}\n')
    data = b""
    while b"\n" not in data:
        chunk = conn.recv(65536)
        if not chunk:
            fail("daemon closed the stats connection", data)
        data += chunk
    conn.close()
    return json.loads(data.split(b"\n")[0])["stats"]


def start_cache_daemon(wsrd, sock_path, *extra):
    """A daemon serving only the Unix socket, with caller-chosen cache/peer
    flags. Returns the Popen handle once 'serving on unix' is announced."""
    proc = subprocess.Popen(
        [wsrd, f"--socket={sock_path}", "--serve-cache", *extra],
        stderr=subprocess.PIPE, text=True)
    stderr_lines = []
    ready = threading.Event()

    def drain_stderr():
        for line in proc.stderr:
            stderr_lines.append(line.rstrip("\n"))
            if "serving on unix" in line:
                ready.set()
        ready.set()  # EOF: unblock the waiter either way

    threading.Thread(target=drain_stderr, daemon=True).start()
    if not ready.wait(timeout=60) or proc.poll() is not None:
        proc.kill()
        fail("cache daemon did not start", *stderr_lines)
    return proc


def request_lines(sock_path, lines):
    """Send NDJSON request lines on one connection; return parsed replies."""
    conn = socket.socket(socket.AF_UNIX)
    conn.settimeout(120)
    conn.connect(sock_path)
    conn.sendall("".join(l + "\n" for l in lines).encode())
    data = b""
    while data.count(b"\n") < len(lines):
        chunk = conn.recv(1 << 20)
        if not chunk:
            fail("daemon closed mid-batch", data[:500])
        data += chunk
    conn.close()
    return [json.loads(l) for l in data.decode().split("\n")[:len(lines)]]


def plan_req(nbytes):
    return f'{{"collective":"reduce","grid":"8","bytes":{nbytes}}}'


def peer_tier_chaos(wsrd, wsrd_load, tmp):
    """Phase 6: kill -9 the peer mid-load; A degrades, trips, recovers."""
    sock_a = os.path.join(tmp, "peer_a.sock")
    sock_b = os.path.join(tmp, "peer_b.sock")
    dir_a = os.path.join(tmp, "store_a")
    dir_b = os.path.join(tmp, "store_b")
    os.makedirs(dir_a)
    os.makedirs(dir_b)
    b_args = (f"--cache-dir={dir_b}",)
    a_args = (f"--cache-dir={dir_a}", f"--peer=unix:{sock_b}",
              "--peer-timeout-ms=250", "--peer-retries=1")

    proc_b = start_cache_daemon(wsrd, sock_b, *b_args)
    proc_a = None
    try:
        # Warm B with shapes A has never planned.
        for reply in request_lines(sock_b, [plan_req(4 * k)
                                            for k in range(1, 9)]):
            if "error" in reply:
                fail("warming peer B failed", reply)

        proc_a = start_cache_daemon(wsrd, sock_a, *a_args)
        [reply] = request_lines(sock_a, [plan_req(4)])
        if reply.get("cache_tier") != "peer":
            fail("daemon A did not answer from the peer tier", reply)

        # Steady load on A while B dies by SIGKILL mid-run: every response
        # must still arrive, in order, with no client-visible error.
        steady_json = os.path.join(tmp, "steady_peer.json")
        steady = subprocess.Popen(
            [wsrd_load, f"--socket={sock_a}", "--mode=steady", "--conns=8",
             "--requests=4000", "--pipeline=8", "--duration-ms=480000",
             f"--json={steady_json}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(0.3)
        proc_b.send_signal(signal.SIGKILL)  # no drain, no goodbye
        proc_b.wait()
        out, err = steady.communicate(timeout=600)
        if steady.returncode != 0:
            fail(f"steady load over a dying peer exited {steady.returncode}",
                 out, err)
        with open(steady_json) as f:
            report = json.load(f)
        if report["requests_ok"] != 4000 or report["violations"]:
            fail("steady load over a dying peer lost responses", report)

        # Fresh shapes now strike the dead peer on every miss; each request
        # must still answer (planned, not peer) and the breaker must trip.
        for reply in request_lines(sock_a, [plan_req(4096 + 4 * k)
                                            for k in range(6)]):
            if "error" in reply:
                fail("request on A errored during the peer outage", reply)
            if reply.get("cache_tier") == "peer":
                fail("peer hit reported while the peer was dead", reply)
        tiers = {t["kind"]: t for t in query_stats(sock_a)["store"]["tiers"]}
        peer = tiers.get("peer")
        if peer is None:
            fail("stats carry no peer-tier ledger", tiers)
        if peer["errors"] + peer["timeouts"] < 1:
            fail("peer failures left no trace in the ledger", peer)
        if peer["breaker_trips"] < 1:
            fail("circuit breaker never tripped during the outage", peer)

        # Revive B at the same path with the same store; warm it with a
        # shape A has never seen. After the cooldown the half-open probe
        # must reach it and close the breaker.
        proc_b = start_cache_daemon(wsrd, sock_b, *b_args)
        request_lines(sock_b, [plan_req(8192 + 4 * k) for k in range(8)])
        time.sleep(1.5)  # > the 1000 ms breaker cooldown
        recovered = None
        for k in range(8):  # distinct shapes: each lands in A's memory once
            [reply] = request_lines(sock_a, [plan_req(8192 + 4 * k)])
            if "error" in reply:
                fail("request on A errored after the peer revived", reply)
            if reply.get("cache_tier") == "peer":
                recovered = reply
                break
            time.sleep(0.5)
        if recovered is None:
            fail("peer hits never resumed after the peer revived",
                 query_stats(sock_a)["store"])
        peer = {t["kind"]: t
                for t in query_stats(sock_a)["store"]["tiers"]}["peer"]
        if peer.get("breaker_state") != "closed":
            fail("breaker did not close after the successful probe", peer)
        print("ok: peer killed -9 mid-load with zero client-visible errors; "
              f"breaker tripped {peer['breaker_trips']}x, fastfailed "
              f"{peer['breaker_fastfails']} calls, and closed again after "
              "revival")
    finally:
        for p in (proc_a, proc_b):
            if p is not None and p.poll() is None:
                p.kill()


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    wsrd, wsrd_load = sys.argv[1], sys.argv[2]
    tmp = tempfile.mkdtemp(prefix="wsrd_chaos_")
    sock_path = os.path.join(tmp, "wsrd.sock")
    steady_json = os.path.join(tmp, "steady.json")

    proc, port, stderr_lines = start_daemon(wsrd, sock_path)
    unix = f"--socket={sock_path}"
    tcp = f"--tcp=127.0.0.1:{port}"
    try:
        # --- 1. steady load over TCP while chaos hits the Unix socket ------
        steady = subprocess.Popen(
            [wsrd_load, tcp, "--mode=steady", "--conns=24",
             f"--requests={STEADY_REQUESTS}", "--pipeline=16",
             "--duration-ms=480000", f"--json={steady_json}"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)

        load(wsrd_load, unix, "slowloris", f"--conns={SLOWLORIS_CONNS}",
             "--duration-ms=120000")
        load(wsrd_load, unix, "torn", "--requests=300")
        load(wsrd_load, unix, "garbage", "--conns=16")
        load(wsrd_load, unix, "oversized", f"--conns={OVERSIZED_CONNS}",
             f"--line-bytes={MAX_LINE_BYTES}")

        out, err = steady.communicate(timeout=600)
        if steady.returncode != 0:
            fail(f"steady load exited with {steady.returncode}", out, err)
        with open(steady_json) as f:
            report = json.load(f)
        if report["requests_ok"] != STEADY_REQUESTS or report["violations"]:
            fail("steady load under chaos lost or reordered responses",
                 report)
        print(f"ok: {STEADY_REQUESTS} steady responses in order over TCP "
              "while slowloris/torn/garbage/oversized chaos ran "
              f"(p99 {report['rtt_us']['p99']} us)")

        # --- 2. stalled readers evicted; connection flood shed -------------
        load(wsrd_load, unix, "stalled", f"--conns={STALLED_CONNS}",
             "--requests=2000", "--duration-ms=120000")
        flood = flood_conns()
        load(wsrd_load, unix, "flood", f"--conns={flood}", "--expect-shed")
        print(f"ok: stalled readers evicted, {flood}-connection flood shed "
              "in-band")

        # --- 3. idle connections evicted -----------------------------------
        idle = socket.socket(socket.AF_UNIX)
        idle.settimeout(IDLE_TIMEOUT_MS / 1000 * 20 + 30)
        idle.connect(sock_path)
        try:
            if idle.recv(4096) != b"":
                fail("idle connection got data instead of eviction")
        except socket.timeout:
            fail("idle connection was not evicted within the idle deadline")
        finally:
            idle.close()
        print("ok: idle connection evicted")

        # --- 4. stats account for everything -------------------------------
        serving = query_stats(sock_path)["serving"]
        checks = [
            ("accepted", serving["accepted"] > 0),
            ("responses", serving["responses"] >= STEADY_REQUESTS),
            ("evicted_timeout", serving["evicted_timeout"] >= SLOWLORIS_CONNS),
            # The stalled pass guarantees every conn was server-evicted (the
            # load tool checks that); the split between the slow-reader and
            # request-deadline classes is timing-dependent, so only the
            # class itself is pinned here.
            ("evicted_slow_reader", serving["evicted_slow_reader"] >= 1),
            ("evicted_idle", serving["evicted_idle"] >= 1),
            ("too_large", serving["too_large"] >= OVERSIZED_CONNS),
            ("shed_conns", serving["shed_conns"] >= 1),
            ("latency count", serving["latency_us"]["count"] > 0),
        ]
        for name, good in checks:
            if not good:
                fail(f"stats counter check failed: {name}", serving)
        print("ok: stats account for evictions, shedding, and rejections")

        # --- 5. graceful drain on SIGTERM ----------------------------------
        t0 = time.monotonic()
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=DRAIN_TIMEOUT_MS / 1000 + 60)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not exit within the drain budget", *stderr_lines)
        elapsed = time.monotonic() - t0
        if rc != 0:
            fail(f"daemon exited with {rc} after SIGTERM", *stderr_lines)
        if os.path.exists(sock_path):
            fail("daemon left its socket file behind")
        print(f"ok: SIGTERM drained and exited 0 in {elapsed:.2f} s")

        # --- 6. peer cache tier: kill -9, degrade, trip, recover -----------
        peer_tier_chaos(wsrd, wsrd_load, tmp)
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
