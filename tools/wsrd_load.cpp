// wsrd_load: load generator and fault injector for wsrd (docs/serving.md).
//
//   wsrd_load --socket=PATH --mode=steady --conns=200 --requests=100000
//   wsrd_load --tcp=127.0.0.1:7077 --mode=slowloris --conns=64
//
// Modes:
//   steady     pipelined well-formed requests across --conns connections;
//              validates per-connection response order and reports RTT
//              percentiles + throughput
//   slowloris  drip a request one byte at a time and never finish the line;
//              expects the server's request deadline to evict every conn
//   stalled    pipeline requests and never read the responses; expects the
//              slow-reader (write-deadline) eviction to close every conn
//   torn       connect, send half a request, disconnect — repeated churn;
//              then verifies a well-formed request still succeeds
//   garbage    binary junk on the wire; expects an in-band error, then a
//              well-formed request on the SAME connection must succeed
//   oversized  a line past --line-bytes; expects {"error":"too_large"}
//              and/or a server-side close, then a fresh conn must succeed
//   flood      hold open --conns connections at once (set it above the
//              server's --max-conns); expects in-band "overloaded" shedding
//
// Exit codes: 0 expectations met; 1 protocol violation or expectation
// failed; 2 setup or deadline failure. --json=PATH writes a
// bench_trend.py-compatible report ("bench", "wall_seconds", "jobs",
// "repeat" plus mode-specific counters).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "serving/event_loop.hpp"
#include "serving/histogram.hpp"

namespace {

using namespace wsr;
using serving::now_us;

struct Options {
  std::string socket_path;
  std::string tcp_spec;
  std::string mode = "steady";
  std::string collective = "reduce";
  std::string grid = "32";
  u64 bytes = 256;
  u64 conns = 64;
  u64 requests = 10'000;  ///< total (steady/torn/garbage/oversized), per conn (stalled)
  u64 pipeline = 32;
  i64 duration_ms = 60'000;
  std::size_t line_bytes = 2u << 20;
  i64 drip_interval_ms = 20;
  bool expect_shed = false;
  std::string json_path;
  std::string bench_name;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: wsrd_load (--socket=PATH | --tcp=HOST:PORT) [options]\n"
      "options: --mode=steady|slowloris|stalled|torn|garbage|oversized|flood\n"
      "         --conns=N --requests=N --pipeline=N --duration-ms=N\n"
      "         --line-bytes=N --drip-interval-ms=N --expect-shed\n"
      "         --collective=C --grid=G --bytes=N\n"
      "         --json=PATH --bench-name=NAME\n");
  return 2;
}

bool parse_u64_flag(const std::string& arg, const char* prefix, u64* out) {
  const std::size_t len = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  *out = std::strtoull(arg.c_str() + len, &end, 10);
  if (end == arg.c_str() + len || *end != '\0') {
    std::fprintf(stderr, "wsrd_load: bad value in %s\n", arg.c_str());
    std::exit(2);
  }
  return true;
}

/// Blocking connect to the target; returns -1 on failure. Retries a few
/// times with a short sleep so a connect burst that overruns the server's
/// listen backlog is not mistaken for an outage.
int connect_target(const Options& o) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    int fd = -1;
    if (!o.socket_path.empty()) {
      fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) return -1;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, o.socket_path.c_str(),
                   sizeof addr.sun_path - 1);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        return fd;
    } else {
      const std::size_t colon = o.tcp_spec.rfind(':');
      const std::string host =
          colon == std::string::npos ? "127.0.0.1" : o.tcp_spec.substr(0, colon);
      const std::string port_s =
          colon == std::string::npos ? o.tcp_spec : o.tcp_spec.substr(colon + 1);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<u16>(std::strtoul(port_s.c_str(), nullptr, 10)));
      if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
      fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (fd < 0) return -1;
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
      }
    }
    const int err = errno;
    ::close(fd);
    if (err != EAGAIN && err != ECONNREFUSED && err != ECONNRESET &&
        err != EINTR)
      return -1;
    ::usleep(2000);
  }
  return -1;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking read of one '\n'-terminated line with a timeout; empty string
/// on EOF, timeout, or error.
std::string recv_line(int fd, i64 timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string line;
  char ch = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return "";
    }
    if (ch == '\n') return line;
    line.push_back(ch);
    if (line.size() > (8u << 20)) return "";
  }
}

std::string request_line(u64 cid, u64 seq, const Options& o) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"id\":\"c%llu-%llu\",\"collective\":\"%s\",\"grid\":\"%s\","
                "\"bytes\":%llu}\n",
                static_cast<unsigned long long>(cid),
                static_cast<unsigned long long>(seq), o.collective.c_str(),
                o.grid.c_str(), static_cast<unsigned long long>(o.bytes));
  return buf;
}

/// Sends one well-formed request on a fresh connection and checks a
/// non-error response comes back — the "server is still alive" probe every
/// fault mode ends with. "overloaded" is the server telling clients to back
/// off and retry (docs/serving.md), so the probe does exactly that: right
/// after a churn burst the server may not have reaped the dead connections
/// against its --max-conns yet.
bool verify_service_alive(const Options& o) {
  const std::string req = request_line(0, 0, o);
  std::string line;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = connect_target(o);
    if (fd < 0) {
      std::fprintf(stderr, "wsrd_load: verify connect failed\n");
      return false;
    }
    const bool sent = send_all(fd, req.data(), req.size());
    line = sent ? recv_line(fd, 10'000) : "";
    ::close(fd);
    if (!line.empty() && line.find("\"error\"") == std::string::npos)
      return true;
    const bool retryable =
        line.empty() || line.find("\"overloaded\"") != std::string::npos;
    if (!retryable) break;
    ::usleep(100'000);
  }
  std::fprintf(stderr, "wsrd_load: verify got: %.200s\n", line.c_str());
  return false;
}

// ---------------------------------------------------------------------------
// Event-loop harness: steady / slowloris / stalled.
// ---------------------------------------------------------------------------

class LoopHarness {
 public:
  explicit LoopHarness(const Options& o) : o_(o) {}

  u64 ok = 0;            ///< well-formed responses, matched in order
  u64 shed = 0;          ///< in-band "overloaded" responses
  u64 shed_conns = 0;    ///< connections shed at accept
  u64 violations = 0;    ///< out-of-order / malformed / unexpected close
  u64 evicted = 0;       ///< server-initiated closes (slowloris/stalled)
  u64 inband_timeout = 0;
  serving::LatencyHistogram rtt;
  double wall_seconds = 0;

  /// 0 ok, 1 expectation failed, 2 setup/deadline failure.
  int run() {
    const bool steady = o_.mode == "steady";
    const bool slowloris = o_.mode == "slowloris";
    const i64 t0 = now_us();
    deadline_us_ = t0 + o_.duration_ms * 1000;

    for (u64 i = 0; i < o_.conns; ++i) {
      const int fd = connect_target(o_);
      if (fd < 0 || !set_nonblocking(fd)) {
        std::fprintf(stderr, "wsrd_load: connect %llu failed: %s\n",
                     static_cast<unsigned long long>(i), std::strerror(errno));
        if (fd >= 0) ::close(fd);
        return 2;
      }
      auto c = std::make_unique<Conn>();
      c->cid = next_cid_++;
      c->fd = fd;
      if (steady) {
        c->quota = o_.requests / o_.conns + (i < o_.requests % o_.conns);
        fill(*c);
      } else if (slowloris) {
        // Everything but the terminating newline: the line never completes,
        // so only the server's request deadline can end this connection.
        c->drip = request_line(c->cid, 0, o_);
        c->drip.pop_back();
      } else {  // stalled: pipeline the full quota, never read
        for (u64 s = 0; s < o_.requests; ++s)
          c->wbuf += request_line(c->cid, s, o_);
      }
      const u64 cid = c->cid;
      const u32 events = steady || slowloris
                             ? u32{EPOLLIN} | (c->wbuf.empty() ? 0u : u32{EPOLLOUT})
                             : u32{EPOLLRDHUP} | (c->wbuf.empty() ? 0u : u32{EPOLLOUT});
      c->loop_id = loop_.add(fd, events,
                             [this, cid](u32 ev) { on_event(cid, ev); });
      conns_.emplace(cid, std::move(c));
    }

    loop_.set_tick(slowloris ? o_.drip_interval_ms : 10, [this] { tick(); });
    loop_.run();
    wall_seconds = static_cast<double>(now_us() - t0) / 1e6;

    if (deadline_hit_) {
      std::fprintf(stderr,
                   "wsrd_load: deadline after %lld ms with %zu conns open\n",
                   static_cast<long long>(o_.duration_ms), conns_.size());
      return 2;
    }
    if (o_.mode == "steady") return violations == 0 ? 0 : 1;
    // slowloris / stalled: every connection must have been evicted.
    return evicted == o_.conns ? 0 : 1;
  }

 private:
  struct Pending {
    u64 seq;
    i64 t_send_us;
  };
  struct Conn {
    u64 cid = 0;
    u64 loop_id = 0;
    int fd = -1;
    std::string rbuf, wbuf;
    std::size_t woff = 0;
    std::deque<Pending> outstanding;
    u64 quota = 0;     ///< steady: total requests this conn sends
    u64 next_seq = 0;
    std::string drip;  ///< slowloris payload
    std::size_t drip_off = 0;
    bool writing = false;
  };

  void fill(Conn& c) {
    while (c.next_seq < c.quota && c.outstanding.size() < o_.pipeline) {
      c.wbuf += request_line(c.cid, c.next_seq, o_);
      c.outstanding.push_back({c.next_seq, now_us()});
      ++c.next_seq;
    }
  }

  void set_interest(Conn& c) {
    const bool want_write = c.woff < c.wbuf.size();
    if (want_write == c.writing) return;
    c.writing = want_write;
    const u32 base = o_.mode == "stalled" ? u32{EPOLLRDHUP} : u32{EPOLLIN};
    loop_.set_events(c.loop_id, base | (want_write ? u32{EPOLLOUT} : 0u));
  }

  /// false = connection destroyed.
  bool flush(Conn& c) {
    while (c.woff < c.wbuf.size()) {
      const ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        on_closed_by_server(c);
        return false;
      }
      c.woff += static_cast<std::size_t>(n);
    }
    if (c.woff == c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    } else if (c.woff > (1u << 20)) {
      c.wbuf.erase(0, c.woff);
      c.woff = 0;
    }
    set_interest(c);
    return true;
  }

  void on_closed_by_server(Conn& c) {
    if (o_.mode == "steady") {
      // A close with work outstanding is only legitimate as accept-shed
      // (handled in handle_line); anything else is a protocol violation.
      if (!c.outstanding.empty() || c.next_seq < c.quota) ++violations;
    } else {
      ++evicted;
    }
    destroy(c);
  }

  void destroy(Conn& c) {
    loop_.remove(c.loop_id);
    ::close(c.fd);
    conns_.erase(c.cid);
    if (conns_.empty()) loop_.stop();
  }

  /// false = connection destroyed.
  bool handle_line(Conn& c, const std::string& line) {
    if (o_.mode == "slowloris") {
      if (line.find("\"timeout\"") != std::string::npos) ++inband_timeout;
      return true;
    }
    // steady
    if (line.find("\"error\"") != std::string::npos) {
      if (line.find("\"overloaded\"") != std::string::npos) {
        if (line.find("\"id\":\"\"") != std::string::npos) {
          // Shed at accept: the server never took this connection.
          ++shed_conns;
          destroy(c);
          return false;
        }
        ++shed;
      } else {
        std::fprintf(stderr, "wsrd_load: unexpected error: %.200s\n",
                     line.c_str());
        ++violations;
      }
      if (!c.outstanding.empty()) c.outstanding.pop_front();
      return true;
    }
    if (c.outstanding.empty()) {
      ++violations;
      return true;
    }
    const Pending front = c.outstanding.front();
    c.outstanding.pop_front();
    char expect[64];
    std::snprintf(expect, sizeof expect, "\"id\":\"c%llu-%llu\"",
                  static_cast<unsigned long long>(c.cid),
                  static_cast<unsigned long long>(front.seq));
    if (line.find(expect) == std::string::npos) {
      std::fprintf(stderr, "wsrd_load: order violation: wanted %s got %.200s\n",
                   expect, line.c_str());
      ++violations;
      return true;
    }
    rtt.record(static_cast<u64>(now_us() - front.t_send_us));
    ++ok;
    return true;
  }

  void on_event(u64 cid, u32 events) {
    const auto it = conns_.find(cid);
    if (it == conns_.end()) return;
    Conn& c = *it->second;

    if (events & EPOLLIN) {
      char chunk[1 << 16];
      const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        on_closed_by_server(c);
        return;
      }
      if (n > 0) {
        c.rbuf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = c.rbuf.find('\n', start);
             nl != std::string::npos; nl = c.rbuf.find('\n', start)) {
          if (!handle_line(c, c.rbuf.substr(start, nl - start))) return;
          start = nl + 1;
        }
        c.rbuf.erase(0, start);
        if (o_.mode == "steady") {
          fill(c);
          if (!flush(c)) return;
          if (c.next_seq == c.quota && c.outstanding.empty()) {
            destroy(c);
            return;
          }
        }
      }
    }
    if (events & EPOLLOUT) {
      if (!flush(c)) return;
    }
    if (events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) {
      on_closed_by_server(c);
      return;
    }
  }

  void tick() {
    if (now_us() >= deadline_us_) {
      deadline_hit_ = true;
      loop_.stop();
      return;
    }
    if (o_.mode != "slowloris") return;
    std::vector<u64> doomed;
    for (auto& [cid, c] : conns_) {
      if (c->drip_off >= c->drip.size()) continue;
      const ssize_t n =
          ::send(c->fd, c->drip.data() + c->drip_off, 1, MSG_NOSIGNAL);
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
        doomed.push_back(cid);
      else if (n > 0)
        ++c->drip_off;
    }
    for (const u64 cid : doomed) {
      const auto it = conns_.find(cid);
      if (it != conns_.end()) on_closed_by_server(*it->second);
    }
  }

  const Options& o_;
  serving::EventLoop loop_;
  std::unordered_map<u64, std::unique_ptr<Conn>> conns_;
  u64 next_cid_ = 1;
  i64 deadline_us_ = 0;
  bool deadline_hit_ = false;
};

// ---------------------------------------------------------------------------
// Blocking churn modes: torn / garbage / oversized / flood.
// ---------------------------------------------------------------------------

int run_torn(const Options& o, u64* churned) {
  const std::string full = request_line(7, 7, o);
  const std::string half = full.substr(0, full.size() / 2);
  for (u64 i = 0; i < o.requests; ++i) {
    const int fd = connect_target(o);
    if (fd < 0) return 2;
    send_all(fd, half.data(), half.size());
    ::close(fd);
    ++*churned;
  }
  return verify_service_alive(o) ? 0 : 1;
}

int run_garbage(const Options& o, u64* errors_seen) {
  const std::string junk = std::string("\x00\x01\xfe\xff{{[[not json", 16) + "\n";
  const std::string good = request_line(9, 9, o);
  for (u64 i = 0; i < o.conns; ++i) {
    const int fd = connect_target(o);
    if (fd < 0) return 2;
    bool ok = send_all(fd, junk.data(), junk.size());
    std::string line = ok ? recv_line(fd, 10'000) : "";
    if (line.find("\"error\"") == std::string::npos) {
      std::fprintf(stderr, "wsrd_load: garbage got no error: %.200s\n",
                   line.c_str());
      ::close(fd);
      return 1;
    }
    ++*errors_seen;
    // The same connection must still serve a well-formed request.
    ok = send_all(fd, good.data(), good.size());
    line = ok ? recv_line(fd, 10'000) : "";
    ::close(fd);
    if (line.empty() || line.find("\"error\"") != std::string::npos) {
      std::fprintf(stderr, "wsrd_load: post-garbage request failed: %.200s\n",
                   line.c_str());
      return 1;
    }
  }
  return 0;
}

int run_oversized(const Options& o, u64* rejected) {
  std::string big(o.line_bytes + 1, 'x');
  big += '\n';
  for (u64 i = 0; i < o.conns; ++i) {
    const int fd = connect_target(o);
    if (fd < 0) return 2;
    // The send may fail mid-line: the server answers "too_large" and closes
    // as soon as the partial line exceeds the limit. Either the in-band
    // error or the close counts as a rejection; what matters is that the
    // server survives and still answers afterwards.
    send_all(fd, big.data(), big.size());
    const std::string line = recv_line(fd, 10'000);
    ::close(fd);
    const bool in_band = line.find("\"too_large\"") != std::string::npos;
    const bool closed = line.empty();
    if (!in_band && !closed) {
      std::fprintf(stderr, "wsrd_load: oversized got: %.200s\n", line.c_str());
      return 1;
    }
    ++*rejected;
  }
  return verify_service_alive(o) ? 0 : 1;
}

int run_flood(const Options& o, u64* held, u64* shed_out) {
  std::vector<int> fds;
  fds.reserve(o.conns);
  for (u64 i = 0; i < o.conns; ++i) {
    const int fd = connect_target(o);
    if (fd < 0) break;  // kernel backlog exhausted still proves the cap
    fds.push_back(fd);
  }
  ::usleep(300'000);  // let the server shed whatever it will shed
  for (const int fd : fds) {
    set_nonblocking(fd);
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n > 0 &&
        std::string(chunk, static_cast<std::size_t>(n)).find("\"overloaded\"") !=
            std::string::npos)
      ++*shed_out;
    else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      ++*held;
    ::close(fd);
  }
  if (o.expect_shed && *shed_out == 0) {
    std::fprintf(stderr, "wsrd_load: flood expected shedding, saw none\n");
    return 1;
  }
  return verify_service_alive(o) ? 0 : 1;
}

void write_json(const Options& o, const char* mode, double wall_seconds,
                const LoopHarness* h, u64 extra_count) {
  if (o.json_path.empty()) return;
  std::FILE* f = std::fopen(o.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "wsrd_load: cannot write %s\n", o.json_path.c_str());
    return;
  }
  const std::string name =
      o.bench_name.empty() ? std::string("wsrd_load_") + mode : o.bench_name;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"mode\": \"%s\", \"jobs\": %llu, "
               "\"repeat\": 1, \"wall_seconds\": %.6f",
               name.c_str(), mode, static_cast<unsigned long long>(o.conns),
               wall_seconds);
  if (h != nullptr) {
    std::fprintf(
        f,
        ", \"requests_ok\": %llu, \"shed\": %llu, \"violations\": %llu, "
        "\"evicted\": %llu, \"throughput_rps\": %.1f, \"rtt_us\": "
        "{\"count\": %llu, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu, "
        "\"max\": %llu}",
        static_cast<unsigned long long>(h->ok),
        static_cast<unsigned long long>(h->shed),
        static_cast<unsigned long long>(h->violations),
        static_cast<unsigned long long>(h->evicted),
        wall_seconds > 0 ? static_cast<double>(h->ok) / wall_seconds : 0.0,
        static_cast<unsigned long long>(h->rtt.count()),
        static_cast<unsigned long long>(h->rtt.percentile(0.50)),
        static_cast<unsigned long long>(h->rtt.percentile(0.90)),
        static_cast<unsigned long long>(h->rtt.percentile(0.99)),
        static_cast<unsigned long long>(h->rtt.max_us()));
  } else {
    std::fprintf(f, ", \"count\": %llu",
                 static_cast<unsigned long long>(extra_count));
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    u64 v = 0;
    if (a.rfind("--socket=", 0) == 0) {
      o.socket_path = a.substr(9);
    } else if (a.rfind("--tcp=", 0) == 0) {
      o.tcp_spec = a.substr(6);
    } else if (a.rfind("--mode=", 0) == 0) {
      o.mode = a.substr(7);
    } else if (a.rfind("--collective=", 0) == 0) {
      o.collective = a.substr(13);
    } else if (a.rfind("--grid=", 0) == 0) {
      o.grid = a.substr(7);
    } else if (a.rfind("--json=", 0) == 0) {
      o.json_path = a.substr(7);
    } else if (a.rfind("--bench-name=", 0) == 0) {
      o.bench_name = a.substr(13);
    } else if (a == "--expect-shed") {
      o.expect_shed = true;
    } else if (parse_u64_flag(a, "--bytes=", &v)) {
      o.bytes = v;
    } else if (parse_u64_flag(a, "--conns=", &v)) {
      o.conns = v > 0 ? v : 1;
    } else if (parse_u64_flag(a, "--requests=", &v)) {
      o.requests = v;
    } else if (parse_u64_flag(a, "--pipeline=", &v)) {
      o.pipeline = v > 0 ? v : 1;
    } else if (parse_u64_flag(a, "--duration-ms=", &v)) {
      o.duration_ms = static_cast<i64>(v > 0 ? v : 1);
    } else if (parse_u64_flag(a, "--line-bytes=", &v)) {
      o.line_bytes = v;
    } else if (parse_u64_flag(a, "--drip-interval-ms=", &v)) {
      o.drip_interval_ms = static_cast<i64>(v > 0 ? v : 1);
    } else {
      return usage();
    }
  }
  if (o.socket_path.empty() == o.tcp_spec.empty()) return usage();
  std::signal(SIGPIPE, SIG_IGN);

  const i64 t0 = now_us();
  int rc = 2;
  u64 count = 0;

  if (o.mode == "steady" || o.mode == "slowloris" || o.mode == "stalled") {
    LoopHarness h(o);
    rc = h.run();
    std::printf(
        "wsrd_load[%s]: %llu ok, %llu shed, %llu violations, %llu evicted "
        "in %.2f s (%.0f rps)\n",
        o.mode.c_str(), static_cast<unsigned long long>(h.ok),
        static_cast<unsigned long long>(h.shed + h.shed_conns),
        static_cast<unsigned long long>(h.violations),
        static_cast<unsigned long long>(h.evicted), h.wall_seconds,
        h.wall_seconds > 0 ? static_cast<double>(h.ok) / h.wall_seconds : 0.0);
    if (h.rtt.count() > 0) {
      std::printf("  rtt p50 %llu us  p90 %llu us  p99 %llu us  max %llu us\n",
                  static_cast<unsigned long long>(h.rtt.percentile(0.50)),
                  static_cast<unsigned long long>(h.rtt.percentile(0.90)),
                  static_cast<unsigned long long>(h.rtt.percentile(0.99)),
                  static_cast<unsigned long long>(h.rtt.max_us()));
    }
    write_json(o, o.mode.c_str(), h.wall_seconds, &h, 0);
    return rc;
  }

  if (o.mode == "torn") {
    rc = run_torn(o, &count);
  } else if (o.mode == "garbage") {
    rc = run_garbage(o, &count);
  } else if (o.mode == "oversized") {
    rc = run_oversized(o, &count);
  } else if (o.mode == "flood") {
    u64 held = 0;
    rc = run_flood(o, &held, &count);
    std::printf("wsrd_load[flood]: %llu held, %llu shed\n",
                static_cast<unsigned long long>(held),
                static_cast<unsigned long long>(count));
    write_json(o, "flood", static_cast<double>(now_us() - t0) / 1e6, nullptr,
               count);
    return rc;
  } else {
    return usage();
  }

  const double wall = static_cast<double>(now_us() - t0) / 1e6;
  std::printf("wsrd_load[%s]: %llu %s in %.2f s -> %s\n", o.mode.c_str(),
              static_cast<unsigned long long>(count),
              o.mode == "torn" ? "torn connects"
              : o.mode == "garbage" ? "in-band errors"
                                    : "rejections",
              wall, rc == 0 ? "server healthy" : "FAILED");
  write_json(o, o.mode.c_str(), wall, nullptr, count);
  return rc;
}
