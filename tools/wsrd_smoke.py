#!/usr/bin/env python3
"""Serving-layer smoke test: wsrd pipe mode vs wsr_plan --json.

Usage: wsrd_smoke.py <path-to-wsrd> <path-to-wsr_plan>

What it checks (the PR's acceptance criteria, also run as the `wsrd_smoke`
ctest and by the CI docs job):

1. Three requests piped through `wsrd --pipe` answer with plan objects that
   are identical to `wsr_plan --json` for the same requests, once the
   serving-only fields (id, cache_tier, plan_cache counters) are stripped.
2. A cold run against an empty --cache-dir plans everything ("planned"),
   and a *restarted* daemon on the same directory answers every request
   from the disk tier ("disk") with bit-identical plan JSON.
3. The stats verb reports the disk store's load and the expected hit
   counters, and request errors answer {"error": ...} without killing the
   daemon.

Stdlib only (no pip installs); exits non-zero with a diagnostic on the
first violation.
"""

import json
import shutil
import subprocess
import sys
import tempfile

REQUESTS = [
    {"collective": "reduce", "grid": "64", "bytes": 1024, "id": 1},
    {"collective": "allreduce", "grid": "8x8", "bytes": 512, "id": 2},
    {"collective": "reduce", "grid": "32", "bytes": 256,
     "algorithm": "TwoPhase", "id": 3},
]

# Fields the daemon adds on top of the wsr_plan --json object, and the
# counter object whose values legitimately differ between front ends.
SERVING_ONLY = ("id", "cache_tier", "plan_cache")


def fail(message, *context):
    print(f"FAIL: {message}", file=sys.stderr)
    for item in context:
        print(f"  {item}", file=sys.stderr)
    sys.exit(1)


def run_daemon(wsrd, lines, cache_dir=None):
    """Pipes `lines` (JSON objects) through wsrd --pipe; returns parsed
    response objects in order."""
    argv = [wsrd, "--pipe"]
    if cache_dir:
        argv.append(f"--cache-dir={cache_dir}")
    payload = "".join(json.dumps(line) + "\n" for line in lines)
    proc = subprocess.run(argv, input=payload, capture_output=True,
                          text=True, timeout=300)
    if proc.returncode != 0:
        fail(f"wsrd exited with {proc.returncode}", proc.stderr)
    responses = [json.loads(line) for line in proc.stdout.splitlines() if line]
    if len(responses) != len(lines):
        fail(f"expected {len(lines)} responses, got {len(responses)}",
             proc.stdout)
    return responses


def run_cli(wsr_plan, request):
    argv = [wsr_plan, request["collective"], request["grid"],
            str(request["bytes"]), "--json"]
    if "algorithm" in request:
        argv.append(f"--algo={request['algorithm']}")
    proc = subprocess.run(argv, capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        fail(f"wsr_plan exited with {proc.returncode}", proc.stderr)
    return json.loads(proc.stdout)


def stripped(response):
    return {k: v for k, v in response.items() if k not in SERVING_ONLY}


def canonical(response):
    return json.dumps(stripped(response), sort_keys=True)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    wsrd, wsr_plan = sys.argv[1], sys.argv[2]
    cache_dir = tempfile.mkdtemp(prefix="wsrd_smoke_")
    try:
        # --- 1. wsrd pipe mode vs wsr_plan --json --------------------------
        daemon = run_daemon(wsrd, REQUESTS)
        for req, resp in zip(REQUESTS, daemon):
            if resp.get("id") != req["id"]:
                fail("response id mismatch", req, resp)
            if resp.get("cache_tier") != "planned":
                fail("fresh daemon must plan every request", resp.get("cache_tier"))
            cli = run_cli(wsr_plan, req)
            if canonical(resp) != canonical(cli):
                fail("wsrd response differs from wsr_plan --json",
                     f"request: {req}",
                     f"wsrd:     {canonical(resp)[:400]}",
                     f"wsr_plan: {canonical(cli)[:400]}")
        print(f"ok: {len(REQUESTS)} wsrd pipe responses match wsr_plan --json")

        # --- 2. warm restart serves disk-hits bit-identically --------------
        stats_verb = {"verb": "stats"}
        cold = run_daemon(wsrd, REQUESTS + [stats_verb], cache_dir)
        for resp in cold[:-1]:
            if resp.get("cache_tier") != "planned":
                fail("cold cache-dir run must plan", resp.get("cache_tier"))
        cold_stats = cold[-1]["stats"]
        if cold_stats["planned"] != len(REQUESTS) or cold_stats["disk"]["appended"] != len(REQUESTS):
            fail("cold stats should report every request planned+appended",
                 cold_stats)

        warm = run_daemon(wsrd, REQUESTS + [stats_verb], cache_dir)
        for req, (cold_resp, warm_resp) in zip(REQUESTS, zip(cold, warm)):
            if warm_resp.get("cache_tier") != "disk":
                fail("restarted daemon must answer from the disk tier",
                     req, warm_resp.get("cache_tier"))
            if canonical(warm_resp) != canonical(cold_resp):
                fail("disk-served plan JSON is not bit-identical to the cold run",
                     f"request: {req}")
        warm_stats = warm[-1]["stats"]
        if warm_stats["planned"] != 0 or warm_stats["disk_hits"] != len(REQUESTS):
            fail("warm stats should report zero plans and all disk hits",
                 warm_stats)
        if warm_stats["disk"]["loaded"] != len(REQUESTS):
            fail("restart should load every appended record", warm_stats)
        print(f"ok: warm restart served {len(REQUESTS)} disk-hits bit-identically")

        # --- 3. wsr_plan --cache-dir shares the daemon's store -------------
        proc = subprocess.run(
            [wsr_plan, "reduce", "64", "1024", "--json",
             f"--cache-dir={cache_dir}"],
            capture_output=True, text=True, timeout=300)
        cli = json.loads(proc.stdout)
        if cli.get("cache_tier") != "disk":
            fail("wsr_plan --cache-dir must see the daemon's plans",
                 cli.get("cache_tier"))
        if canonical(cli) != canonical(warm[0]):
            fail("wsr_plan --cache-dir plan differs from the daemon's")
        print("ok: wsr_plan --cache-dir shares the daemon's disk store")

        # --- 4. errors are answered, not fatal -----------------------------
        mixed = [{"collective": "nope", "grid": "4", "bytes": 4, "id": "bad"},
                 REQUESTS[0]]
        responses = run_daemon(wsrd, mixed)
        if "error" not in responses[0] or responses[0].get("id") != "bad":
            fail("invalid request must answer an error with the echoed id",
                 responses[0])
        if "error" in responses[1]:
            fail("a bad request must not poison the next one", responses[1])
        print("ok: request errors answer in-band and the stream continues")

        # --- 5. adversarial input: the daemon degrades, never dies ---------
        # Empty lines are skipped, binary garbage and an oversized line
        # answer in-band errors, a well-formed request AFTER the abuse still
        # plans, and a half-written request cut off by EOF is answered
        # rather than hung on. (The socket transports get the same treatment
        # plus eviction policies — tools/wsrd_chaos.py covers those.)
        good = json.dumps(REQUESTS[0])
        payload = (b"\n"
                   b"   \t\n"
                   b"\x00\x01\xfe\xffnot json\n"
                   + b"x" * 5000 + b"\n"
                   + good.encode() + b"\n"
                   + b'{"collective":"reduce","grid":"32"')  # torn, no EOL
        proc = subprocess.run([wsrd, "--pipe", "--max-line-bytes=4096"],
                              input=payload, capture_output=True, timeout=300)
        if proc.returncode != 0:
            fail(f"wsrd exited with {proc.returncode} on adversarial input",
                 proc.stderr.decode(errors="replace"))
        lines = [json.loads(l) for l in proc.stdout.splitlines() if l]
        if len(lines) != 4:
            fail(f"expected 4 responses to adversarial input, got {len(lines)}",
                 proc.stdout[:800])
        garbage_resp, oversized_resp, good_resp, torn_resp = lines
        if "error" not in garbage_resp:
            fail("binary garbage must answer an in-band error", garbage_resp)
        if oversized_resp.get("error") != "too_large":
            fail("an oversized line must answer too_large", oversized_resp)
        if "error" in good_resp or good_resp.get("id") != REQUESTS[0]["id"]:
            fail("a request after garbage+oversized must still plan",
                 good_resp)
        if "error" not in torn_resp:
            fail("a torn request at EOF must answer an error", torn_resp)
        print("ok: empty/garbage/oversized/torn input answered in-band, "
              "daemon stayed up")
        return 0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
